package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"sparcle/internal/scenario"
)

// Client is a typed Go client for the sparcle-server API, so deployments
// can drive the control plane programmatically.
type Client struct {
	// BaseURL is the server root, e.g. "http://10.0.0.5:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.StatusCode, e.Message)
}

// AppStatus mirrors the server's application view.
type AppStatus struct {
	Name         string       `json:"name"`
	Class        string       `json:"class"`
	TotalRate    float64      `json:"totalRate"`
	Availability float64      `json:"availability"`
	Paths        []PathStatus `json:"paths"`
}

// PathStatus mirrors one task assignment path.
type PathStatus struct {
	Rate  float64           `json:"rate"`
	Hosts map[string]string `json:"hosts"`
}

// FluctuationResult mirrors the fluctuation response.
type FluctuationResult struct {
	ViolatedGR []string           `json:"violatedGR"`
	BERates    map[string]float64 `json:"beRates"`
}

// Submit admits one application.
func (c *Client) Submit(ctx context.Context, spec scenario.AppSpec) (*AppStatus, error) {
	var out AppStatus
	if err := c.do(ctx, http.MethodPost, "/apps", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Apps lists the admitted applications.
func (c *Client) Apps(ctx context.Context) ([]AppStatus, error) {
	var out []AppStatus
	if err := c.do(ctx, http.MethodGet, "/apps", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Remove withdraws an application.
func (c *Client) Remove(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/apps/"+url.PathEscape(name), nil, nil)
}

// Repair re-places a violated guaranteed-rate application.
func (c *Client) Repair(ctx context.Context, name string) (*AppStatus, error) {
	var out AppStatus
	if err := c.do(ctx, http.MethodPost, "/apps/"+url.PathEscape(name)+"/repair", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fluctuate applies capacity scales; keys are "ncp:<name>" or
// "link:<name>".
func (c *Client) Fluctuate(ctx context.Context, scale map[string]float64) (*FluctuationResult, error) {
	var out FluctuationResult
	req := fluctuationRequest{Scale: scale}
	if err := c.do(ctx, http.MethodPost, "/fluctuation", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("server: encode request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e errorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
