package server

import (
	"context"
	"errors"
	"testing"

	"sparcle/internal/scenario"
)

func pipelineSpec(name, class string, qos scenario.QoSSpec) scenario.AppSpec {
	qos.Class = class
	return scenario.AppSpec{
		Name: name,
		CTs: []scenario.CTSpec{
			{Name: "in", Host: "src"},
			{Name: "work", Req: map[string]float64{"cpu": 10}},
			{Name: "out", Host: "snk"},
		},
		TTs: []scenario.TTSpec{
			{From: "in", To: "work", Bits: 1},
			{From: "work", To: "out", Bits: 1},
		},
		QoS: qos,
	}
}

func TestClientLifecycle(t *testing.T) {
	ts, _ := testServer(t)
	c := NewClient(ts.URL)
	ctx := context.Background()

	if !c.Healthy(ctx) {
		t.Fatal("server unhealthy")
	}

	created, err := c.Submit(ctx, pipelineSpec("pipe", "best-effort", scenario.QoSSpec{Priority: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if created.TotalRate <= 0 || created.Name != "pipe" {
		t.Fatalf("created = %+v", created)
	}

	apps, err := c.Apps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0].Name != "pipe" {
		t.Fatalf("apps = %+v", apps)
	}

	if err := c.Remove(ctx, "pipe"); err != nil {
		t.Fatal(err)
	}
	err = c.Remove(ctx, "pipe")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("double remove err = %v", err)
	}
	if apiErr.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestClientFluctuateAndRepair(t *testing.T) {
	ts, _ := testServer(t)
	c := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := c.Submit(ctx, pipelineSpec("g", "guaranteed-rate", scenario.QoSSpec{
		MinRate: 5, MinRateAvailability: 0.9, MaxPaths: 1,
	})); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Fluctuate(ctx, map[string]float64{"ncp:m1": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ViolatedGR) != 1 {
		t.Fatalf("violations = %+v", rep)
	}
	repaired, err := c.Repair(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Paths[0].Hosts["work"] != "m2" {
		t.Fatalf("repaired = %+v", repaired)
	}
	// Bad element key surfaces as APIError 400.
	_, err = c.Fluctuate(ctx, map[string]float64{"bogus": 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v", err)
	}
}

func TestClientConnectionError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listening
	if c.Healthy(context.Background()) {
		t.Fatal("unreachable server reported healthy")
	}
	if _, err := c.Apps(context.Background()); err == nil {
		t.Fatal("want connection error")
	}
}
