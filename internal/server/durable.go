package server

import (
	"encoding/json"
	"fmt"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/journal"
)

// metricRecovery reports how long the last journal recovery took.
const metricRecovery = "sparcle_recovery_seconds"

// EnableJournal makes every mutating scheduler operation durable: the
// journal at dir is opened and recovered, a scheduler byte-equal to the
// pre-crash one is rebuilt from snapshot + bounded replay, and from then
// on each operation appends its outcome record before the HTTP response
// acks it. Every snapshotEvery records a snapshot bounds future replay
// (0 disables periodic snapshots).
//
// On an empty journal a genesis snapshot of the current (fresh) scheduler
// is written first: it pins the RNG seed, so a later restart with a
// different -seed flag recovers the original stream instead of silently
// diverging.
//
// While recovery runs, the server answers mutating routes with 503 (see
// middleware); GETs stay available.
func (s *Server) EnableJournal(dir string, opt journal.Options, snapshotEvery int) error {
	if s.rt() != nil {
		return s.enableShardJournal(dir, opt, snapshotEvery)
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	start := time.Now()

	if opt.Metrics == nil {
		opt.Metrics = s.metrics
	}
	j, err := journal.Open(dir, opt)
	if err != nil {
		return fmt.Errorf("open journal: %w", err)
	}
	snapBytes, recs, err := j.Recover()
	if err != nil {
		j.Close()
		return fmt.Errorf("recover journal: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if snapBytes == nil && len(recs) == 0 {
		// Fresh journal: pin the initial state (seed included) before the
		// first operation can be acknowledged.
		snap, err := s.sched.ExportSnapshot()
		if err != nil {
			j.Close()
			return fmt.Errorf("export genesis snapshot: %w", err)
		}
		if err := j.WriteSnapshot(snap); err != nil {
			j.Close()
			return fmt.Errorf("write genesis snapshot: %w", err)
		}
	} else {
		var snap *core.Snapshot
		if snapBytes != nil {
			snap = &core.Snapshot{}
			if err := json.Unmarshal(snapBytes, snap); err != nil {
				j.Close()
				return fmt.Errorf("decode snapshot: %w", err)
			}
		}
		coreRecs := make([]*core.Record, len(recs))
		for i := range recs {
			coreRecs[i] = &core.Record{}
			if err := json.Unmarshal(recs[i].Data, coreRecs[i]); err != nil {
				j.Close()
				return fmt.Errorf("decode record %d: %w", recs[i].Seq, err)
			}
		}
		rebuilt, err := core.Rebuild(s.net, snap, coreRecs, s.opts...)
		if err != nil {
			j.Close()
			return fmt.Errorf("rebuild scheduler: %w", err)
		}
		s.sched = rebuilt
	}

	s.journal = j
	s.sched.SetCommitHook(func(rec *core.Record) error {
		// The hook runs inside a scheduler operation, so its append (and
		// fsync) spans nest under that operation's span; with spans
		// disabled OpSpan is nil and AppendSpan behaves exactly as Append.
		if _, err := j.AppendSpan(s.sched.OpSpan(), "op", rec); err != nil {
			return err
		}
		if snapshotEvery > 0 && j.SinceSnapshot() >= snapshotEvery {
			ssp := s.sched.OpSpan().Child("journal.snapshot")
			defer ssp.End()
			snap, err := s.sched.ExportSnapshot()
			if err != nil {
				return fmt.Errorf("export snapshot: %w", err)
			}
			if err := j.WriteSnapshot(snap); err != nil {
				return fmt.Errorf("write snapshot: %w", err)
			}
		}
		return nil
	})

	s.metrics.SetHelp(metricRecovery, "Duration of the last journal recovery in seconds.")
	s.metrics.Gauge(metricRecovery).Set(time.Since(start).Seconds())
	return nil
}

// Close stops the replication node (if any) and releases the server's
// journal, flushing buffered appends. The node stops first: its apply
// loop may still be writing journal records, and Stop waits for it.
func (s *Server) Close() error {
	s.mu.Lock()
	node := s.replica
	j := s.journal
	s.journal = nil
	s.mu.Unlock()
	if node != nil {
		node.Stop()
	}
	if j == nil {
		return nil
	}
	return j.Close()
}

// Journal returns the server's journal, nil unless EnableJournal
// succeeded. Tests use it to snapshot or inspect on demand.
func (s *Server) Journal() *journal.Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}
