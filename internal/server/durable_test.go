package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparcle/internal/core"
	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/resource"
	"sparcle/internal/scenario"
)

// testNet builds the small two-branch network used across server tests.
func testNet(t *testing.T) *network.Network {
	t.Helper()
	b := network.NewBuilder("test")
	src := b.AddNCP("src", nil, 0)
	m1 := b.AddNCP("m1", resource.Vector{resource.CPU: 100}, 0)
	m2 := b.AddNCP("m2", resource.Vector{resource.CPU: 80}, 0)
	snk := b.AddNCP("snk", nil, 0)
	b.AddLink("s1", src, m1, 1e6, 0)
	b.AddLink("s2", src, m2, 1e6, 0)
	b.AddLink("k1", m1, snk, 1e6, 0)
	b.AddLink("k2", m2, snk, 1e6, 0)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// journaledServer starts an httptest server whose scheduler journals to
// dir with fsync-per-append, so abandoning it (no Close) models a crash.
func journaledServer(t *testing.T, net *network.Network, dir string, opts ...core.Option) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(net, opts...)
	if err := srv.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatalf("EnableJournal: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getApps(t *testing.T, url string) string {
	t.Helper()
	resp, body := do(t, http.MethodGet, url+"/apps", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /apps: %d %s", resp.StatusCode, body)
	}
	return string(body)
}

// TestServerRecoversAfterCrash drives mutations over HTTP against a
// journaled server, abandons it without shutdown, starts a second server
// over the same journal directory, and asserts GET /apps is byte-equal.
func TestServerRecoversAfterCrash(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv1, ts1 := journaledServer(t, net, dir, core.WithRandSeed(5))

	for i := 0; i < 4; i++ {
		body := appJSON(fmt.Sprintf("app-%d", i), "best-effort", `, "priority": 1`)
		if resp, b := do(t, http.MethodPost, ts1.URL+"/apps", body); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit app-%d: %d %s", i, resp.StatusCode, b)
		}
	}
	if resp, b := do(t, http.MethodDelete, ts1.URL+"/apps/app-1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d %s", resp.StatusCode, b)
	}
	if resp, b := do(t, http.MethodPost, ts1.URL+"/fluctuation", `{"scale": {"ncp:m2": 0.5}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("fluctuation: %d %s", resp.StatusCode, b)
	}
	want := getApps(t, ts1.URL)
	ts1.Close()
	// No srv1.Close(): the journal was fsynced per append, the process
	// "crashed" with the journal still open.
	_ = srv1

	srv2, ts2 := journaledServer(t, net, dir, core.WithRandSeed(5))
	if got := getApps(t, ts2.URL); got != want {
		t.Fatalf("recovered /apps differs\nbefore crash: %s\nafter:        %s", want, got)
	}
	// 4 submits + 1 remove + 1 fluctuation.
	if srv2.Journal().LastSeq() != 6 {
		t.Fatalf("recovered journal at seq %d, want 6", srv2.Journal().LastSeq())
	}
	// The recovered server keeps working and journaling.
	if resp, b := do(t, http.MethodPost, ts2.URL+"/apps", appJSON("post-crash", "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-recovery submit: %d %s", resp.StatusCode, b)
	}
	if srv2.Journal().LastSeq() != 7 {
		t.Fatalf("post-recovery journal at seq %d, want 7", srv2.Journal().LastSeq())
	}
}

// TestServerGenesisSnapshotPinsSeed restarts the journaled server with a
// different -seed; the genesis snapshot must win, reproducing the
// original scheduler exactly.
func TestServerGenesisSnapshotPinsSeed(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	_, ts1 := journaledServer(t, net, dir, core.WithRandSeed(5))
	if resp, b := do(t, http.MethodPost, ts1.URL+"/apps", appJSON("pinned", "guaranteed-rate", `, "minRate": 0.1, "minRateAvailability": 0.5, "maxPaths": 2`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	want := getApps(t, ts1.URL)
	ts1.Close()

	_, ts2 := journaledServer(t, net, dir, core.WithRandSeed(999))
	if got := getApps(t, ts2.URL); got != want {
		t.Fatalf("restart with different seed diverged\nwant: %s\ngot:  %s", want, got)
	}
}

// TestServerBatchEndpoint submits a batch mixing good specs, a bad spec,
// and a duplicate name: one HTTP call, per-app verdicts, one journal
// record.
func TestServerBatchEndpoint(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv, ts := journaledServer(t, net, dir)

	batch := fmt.Sprintf(`{"apps": [%s, %s, %s, %s]}`,
		appJSON("b0", "best-effort", `, "priority": 1`),
		appJSON("b1", "best-effort", `, "priority": 2`),
		appJSON("b1", "best-effort", `, "priority": 1`), // duplicate name
		appJSON("b3", "no-such-class", ""))              // bad spec
	resp, body := do(t, http.MethodPost, ts.URL+"/apps/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != 4 {
		t.Fatalf("verdicts = %+v", br.Verdicts)
	}
	if !br.Verdicts[0].Admitted || !br.Verdicts[1].Admitted {
		t.Fatalf("good specs not admitted: %+v", br.Verdicts)
	}
	if br.Verdicts[2].Admitted || br.Verdicts[2].Error == "" {
		t.Fatalf("duplicate name admitted: %+v", br.Verdicts[2])
	}
	if br.Verdicts[3].Admitted || br.Verdicts[3].Error == "" {
		t.Fatalf("bad spec admitted: %+v", br.Verdicts[3])
	}
	if br.Verdicts[0].App == nil || br.Verdicts[0].App.TotalRate <= 0 {
		t.Fatalf("admitted verdict lacks app view: %+v", br.Verdicts[0])
	}
	if srv.Journal().LastSeq() != 1 {
		t.Fatalf("batch journaled %d records, want exactly 1", srv.Journal().LastSeq())
	}
}

// TestServerRecoveringGate: while recovery runs, mutating routes answer
// 503 with Retry-After and reads stay available.
func TestServerRecoveringGate(t *testing.T) {
	srv := New(testNet(t))
	srv.recovering.Store(true)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON("x", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while recovering: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/apps/x", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE while recovering: %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET while recovering: %d", resp.StatusCode)
	}

	srv.recovering.Store(false)
	if resp, _ := do(t, http.MethodPost, ts.URL+"/apps", appJSON("x", "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST after recovery: %d", resp.StatusCode)
	}
}

// TestSubmitAllSharesBatchPath: the CLI bulk-load helper journals one
// atomic batch record, exactly like POST /apps/batch.
func TestSubmitAllSharesBatchPath(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv, _ := journaledServer(t, net, dir)

	var apps []core.App
	for i := 0; i < 3; i++ {
		var spec scenario.AppSpec
		if err := json.Unmarshal([]byte(appJSON(fmt.Sprintf("cli-%d", i), "best-effort", `, "priority": 1`)), &spec); err != nil {
			t.Fatal(err)
		}
		app, err := scenario.BuildApp(spec, net)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	if err := srv.SubmitAll(apps, io.Discard); err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	if srv.Journal().LastSeq() != 1 {
		t.Fatalf("SubmitAll journaled %d records, want exactly 1", srv.Journal().LastSeq())
	}
	srv.mu.Lock()
	n := len(srv.sched.BEApps())
	srv.mu.Unlock()
	if n != 3 {
		t.Fatalf("SubmitAll admitted %d apps, want 3", n)
	}
}

// TestServerPeriodicSnapshot: with snapshotEvery=2, mutations trigger
// snapshots and a restart replays only the bounded tail.
func TestServerPeriodicSnapshot(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv := New(net, core.WithRandSeed(5))
	if err := srv.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 2); err != nil {
		t.Fatalf("EnableJournal: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 5; i++ {
		if resp, b := do(t, http.MethodPost, ts.URL+"/apps", appJSON(fmt.Sprintf("s-%d", i), "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
	}
	if since := srv.Journal().SinceSnapshot(); since >= 5 {
		t.Fatalf("no periodic snapshot was written: %d records since last", since)
	}
	want := getApps(t, ts.URL)
	ts.Close()

	srv2, ts2 := journaledServer(t, net, dir, core.WithRandSeed(5))
	defer srv2.Close()
	if got := getApps(t, ts2.URL); got != want {
		t.Fatalf("snapshot+tail recovery diverged\nwant: %s\ngot:  %s", want, got)
	}
}
