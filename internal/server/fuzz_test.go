package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparcle/internal/network"
	"sparcle/internal/resource"
)

// FuzzSubmitDecode drives the POST /apps decoder end to end with
// arbitrary bodies: the handler must never panic (the recovery
// middleware counts panics, and a fuzz input that trips it fails here),
// must always answer with a well-formed JSON object, and must only use
// the statuses the API documents for submission.
func FuzzSubmitDecode(f *testing.F) {
	b := network.NewBuilder("fuzz")
	src := b.AddNCP("src", nil, 0)
	mid := b.AddNCP("mid", resource.Vector{resource.CPU: 100}, 0)
	snk := b.AddNCP("snk", nil, 0)
	b.AddLink("l0", src, mid, 1e6, 0)
	b.AddLink("l1", mid, snk, 1e6, 0)
	net, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(appJSON("a", "be", `, "priority": 1`))
	f.Add(appJSON("g", "gr", `, "minRate": 1, "minRateAvailability": 0.5`))
	f.Add(`{}`)
	f.Add(`{"name":"x"}`)
	f.Add(`{"name":"x","cts":[{"name":"c","host":"nowhere"}]}`)
	f.Add(`{"name":"x","unknown":true}`)
	f.Add(`not json`)
	f.Add(`{"name":"x","cts":[{"name":"c","req":{"cpu":-1}}]}`)
	f.Add(`[1,2,3]`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		// Fresh server per input: submissions mutate scheduler state, and
		// a shared one would make failures depend on the corpus order.
		srv := New(net)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/apps", strings.NewReader(body))
		srv.Handler().ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusCreated, http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("POST /apps -> %d (undocumented status) for body %q", rec.Code, body)
		}
		var parsed map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatalf("non-JSON response %q: %v", rec.Body.String(), err)
		}
		if rec.Code != http.StatusCreated {
			if _, ok := parsed["error"]; !ok {
				t.Fatalf("error response without error field: %q", rec.Body.String())
			}
		}
		if got := srv.metrics.Snapshot()["sparcle_http_panics_total"]; len(got.Series) != 0 {
			t.Fatalf("handler panicked on body %q", body)
		}
	})
}
