package server

import (
	"fmt"

	"sparcle/internal/core"
	"sparcle/internal/obs"
)

// Group-commit wiring for the HTTP front end. With group commit
// enabled, POST /apps no longer takes the scheduler lock per request:
// the handler decodes and builds the app off-lock, then hands it to the
// GroupCommitter, which coalesces every submitter that arrives while a
// commit is in flight into the next group — one lock acquisition, one
// warm BE solve, and one journal append+fsync for the whole group.
// POST /apps/batch composes: a client batch enters the queue as one
// indivisible entry and merges with concurrent single submits.

// EnableGroupCommit routes admissions through a group-commit queue.
// Call it after EnableJournal: journal recovery rebuilds the scheduler
// (or the sharded router), and the committer must wrap the rebuilt one.
func (s *Server) EnableGroupCommit(opt core.GroupOptions) {
	if opt.Metrics == nil {
		opt.Metrics = s.metrics
	}
	s.mu.Lock()
	s.groupOpt = &opt
	s.mu.Unlock()
	if rt := s.rt(); rt != nil {
		rt.EnableGroupCommit(opt)
		return
	}
	s.group = core.NewGroupCommitter(s.groupCommit, opt)
}

// groupCommit is the committer's commit function: it takes the
// scheduler lock once for the whole group, rejects duplicate names
// (against admitted apps and within the group — the per-request check
// cannot run off-lock without racing), and runs the group through
// SubmitBatch: one solve, one journal record.
func (s *Server) groupCommit(apps []core.App, lead *obs.Span) ([]core.BatchResult, error) {
	defer s.lockWithSpan(lead)()
	results := make([]core.BatchResult, len(apps))
	sub := make([]core.App, 0, len(apps))
	idx := make([]int, 0, len(apps))
	var seen map[string]bool
	for i, app := range apps {
		results[i].Name = app.Name
		if s.sched.HasApp(app.Name) || seen[app.Name] {
			results[i].Err = fmt.Errorf("application %q already admitted: %w", app.Name, core.ErrRejected)
			continue
		}
		if seen == nil {
			seen = make(map[string]bool, len(apps))
		}
		seen[app.Name] = true
		sub = append(sub, app)
		idx = append(idx, i)
	}
	res, err := s.sched.SubmitBatch(sub)
	for j := range res {
		results[idx[j]] = res[j]
	}
	return results, err
}

// groupStats returns the /healthz view of group-commit activity, nil
// when the feature is disabled.
func (s *Server) groupStats() *core.GroupStats {
	if rt := s.rt(); rt != nil {
		if !rt.GroupEnabled() {
			return nil
		}
		st := rt.GroupStats()
		return &st
	}
	if s.group == nil {
		return nil
	}
	st := s.group.Stats()
	return &st
}
