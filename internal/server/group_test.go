package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sparcle/internal/core"
	"sparcle/internal/journal"
)

// groupedTestServer is testServer with the group-commit front end armed.
func groupedTestServer(t *testing.T, opt core.GroupOptions) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(testNet(t))
	srv.EnableGroupCommit(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestGroupCommitHTTP drives concurrent POST /apps through the grouped
// front end: every submit lands (201 with a real placement), duplicates
// still 409, and /healthz reports the committer's activity.
func TestGroupCommitHTTP(t *testing.T) {
	ts, _ := groupedTestServer(t, core.GroupOptions{MaxSize: 8})

	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := do(t, http.MethodPost, ts.URL+"/apps",
				appJSON(fmt.Sprintf("g%d", i), "best-effort", `, "priority": 1`))
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusCreated {
				var v appView
				if err := json.Unmarshal(body, &v); err != nil || v.TotalRate <= 0 {
					t.Errorf("g%d: bad view %s (%v)", i, body, err)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusCreated {
			t.Fatalf("g%d: status %d", i, c)
		}
	}

	// Duplicate names are rejected from inside the group path too.
	if resp, _ := do(t, http.MethodPost, ts.URL+"/apps", appJSON("g0", "best-effort", "")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate through group path: %d, want 409", resp.StatusCode)
	}

	// A client batch composes with the group path.
	batch := fmt.Sprintf(`{"apps": [%s, %s]}`,
		appJSON("b0", "best-effort", `, "priority": 1`),
		appJSON("b1", "best-effort", `, "priority": 1`))
	resp, body := do(t, http.MethodPost, ts.URL+"/apps/batch", batch)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"admitted":true`) {
		t.Fatalf("batch through group path: %d %s", resp.StatusCode, body)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz struct {
		GroupCommit *core.GroupStats `json:"groupCommit"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	// n submits + 1 duplicate + one 2-app batch all went through groups.
	if hz.GroupCommit == nil || hz.GroupCommit.Apps != n+1+2 || hz.GroupCommit.Groups == 0 {
		t.Fatalf("healthz groupCommit = %+v, want %d apps through groups", hz.GroupCommit, n+3)
	}
	if hz.GroupCommit.MaxSize != 8 {
		t.Fatalf("healthz groupCommit echoes maxSize %d, want 8", hz.GroupCommit.MaxSize)
	}
}

// TestGroupCommitJournalReplay: grouped admissions are journaled as
// batch records, and a restart recovers the exact same application set.
func TestGroupCommitJournalReplay(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv := New(net)
	if err := srv.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatal(err)
	}
	srv.EnableGroupCommit(core.GroupOptions{MaxSize: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := do(t, http.MethodPost, ts.URL+"/apps",
				appJSON(fmt.Sprintf("j%d", i), "best-effort", `, "priority": 1`))
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("j%d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	before := getApps(t, ts.URL)

	// Crash-restart: a fresh server recovers from the grouped journal.
	srv2 := New(net)
	if err := srv2.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	if after := getApps(t, ts2.URL); after != before {
		t.Fatalf("recovered apps differ\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestGroupCommitSharded: with -shards, intra-region admissions route
// through per-shard committers and /healthz sums their stats.
func TestGroupCommitSharded(t *testing.T) {
	srv, err := NewSharded(shardTestNet(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableGroupCommit(core.GroupOptions{MaxSize: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := "a0", "a1"
			if i%2 == 1 {
				from, to = "b0", "b1"
			}
			resp, body := do(t, http.MethodPost, ts.URL+"/apps",
				shardAppJSON(fmt.Sprintf("s%d", i), from, to, shardBEQoS))
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("s%d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	// Cross-region admission stays on the ungrouped two-lock path but
	// must still work with group commit armed.
	resp, body := do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("x", "a0", "b1", shardBEQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cross-region with groups armed: %d %s", resp.StatusCode, body)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz struct {
		GroupCommit *core.GroupStats `json:"groupCommit"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.GroupCommit == nil || hz.GroupCommit.Apps != 4 {
		t.Fatalf("sharded healthz groupCommit = %+v, want 4 intra-region apps", hz.GroupCommit)
	}
}

// TestDecodeStrictPooled pins the pooled request-decode path: repeated
// decodes reuse the scratch buffer, keeping per-request allocations to
// the decoder's own small constant rather than a fresh body buffer.
func TestDecodeStrictPooled(t *testing.T) {
	body := appJSON("alloc-pin", "best-effort", `, "priority": 1`)
	var spec struct {
		Name string          `json:"name"`
		CTs  json.RawMessage `json:"cts"`
		TTs  json.RawMessage `json:"tts"`
		QoS  json.RawMessage `json:"qos"`
	}
	for i := 0; i < 10; i++ { // warm the pool
		if err := decodeStrict(strings.NewReader(body), &spec); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := decodeStrict(strings.NewReader(body), &spec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 24 {
		t.Fatalf("decodeStrict allocates %v per request, want the pooled-buffer constant (<= 24)", allocs)
	}
}

// TestGroupCommitRemoveRepair: DELETE and repair ride the commit queue
// when group commit is armed — they serialize against concurrent
// admissions through the same path instead of a separate lock — and
// their journal records replay to the same state.
func TestGroupCommitRemoveRepair(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	srv := New(net, core.WithRandSeed(5))
	if err := srv.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatalf("EnableJournal: %v", err)
	}
	srv.EnableGroupCommit(core.GroupOptions{MaxSize: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Admit the residents up front (contended admission is covered by
	// TestGroupCommitHTTP); the race under test is removes, repairs and
	// fresh submits interleaving through one commit queue.
	const n = 4
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rr%d", i)
		// Odd entries will be repaired, and repair targets guaranteed-rate.
		spec := appJSON(name, "best-effort", `, "priority": 1`)
		if i%2 == 1 {
			spec = appJSON(name, "guaranteed-rate", `, "minRate": 0.1, "minRateAvailability": 0.5, "maxPaths": 2`)
		}
		if resp, b := do(t, http.MethodPost, ts.URL+"/apps", spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: %d %s", name, resp.StatusCode, b)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("rr%d", i)
			if i%2 == 0 {
				if resp, b := do(t, http.MethodDelete, ts.URL+"/apps/"+name, ""); resp.StatusCode != http.StatusOK {
					t.Errorf("remove %s: %d %s", name, resp.StatusCode, b)
				}
			} else {
				resp, b := do(t, http.MethodPost, ts.URL+"/apps/"+name+"/repair", "")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("repair %s: %d %s", name, resp.StatusCode, b)
					return
				}
				var v appView
				if err := json.Unmarshal(b, &v); err != nil || v.Name != name {
					t.Errorf("repair %s view: %s (%v)", name, b, err)
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Fresh admissions race the removes/repairs through the same
			// queue; either verdict is fine, only the interleaving matters.
			resp, b := do(t, http.MethodPost, ts.URL+"/apps",
				appJSON(fmt.Sprintf("extra%d", i), "best-effort", `, "priority": 1`))
			if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
				t.Errorf("extra%d: %d %s", i, resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()

	// Misses still 404 through the queue.
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/apps/nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove miss: %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/apps/nope/repair", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repair miss: %d, want 404", resp.StatusCode)
	}

	want := getApps(t, ts.URL)
	ts.Close()

	// The interleaved history replays to the same scheduler.
	srv2, ts2 := journaledServer(t, net, dir, core.WithRandSeed(5))
	defer srv2.Close()
	if got := getApps(t, ts2.URL); got != want {
		t.Fatalf("replayed remove/repair history diverged\nwant: %s\ngot:  %s", want, got)
	}
}
