package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sparcle/internal/obs"
)

// TestMetricsEndToEnd drives a full application lifecycle over HTTP and
// asserts that /metrics reflects every step: admission counters by class
// and outcome, the placement latency histogram, repair and fluctuation
// counters, and per-app allocated-rate gauges that disappear on withdrawal.
func TestMetricsEndToEnd(t *testing.T) {
	ts, _ := testServer(t)

	resp, _ := do(t, http.MethodPost, ts.URL+"/apps",
		appJSON("g", "guaranteed-rate", `, "minRate": 5, "minRateAvailability": 0.9, "maxPaths": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit GR: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps", appJSON("b", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit BE: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps",
		appJSON("big", "guaranteed-rate", `, "minRate": 1e9, "minRateAvailability": 0.9`))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("oversized GR: %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/fluctuation", `{"scale": {"ncp:m1": 0}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("fluctuation: %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/apps/g/repair", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %d", resp.StatusCode)
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`sparcle_admissions_total{class="guaranteed-rate",outcome="admitted"} 1`,
		`sparcle_admissions_total{class="best-effort",outcome="admitted"} 1`,
		`sparcle_admissions_total{class="guaranteed-rate",outcome="rejected"} 1`,
		`sparcle_placement_seconds_count{class="guaranteed-rate"} 2`,
		`sparcle_repairs_total{outcome="repaired"} 1`,
		`sparcle_fluctuations_total 1`,
		`sparcle_app_allocated_rate{app="g",class="guaranteed-rate"}`,
		`sparcle_app_allocated_rate{app="b",class="best-effort"}`,
		`# TYPE sparcle_placement_seconds histogram`,
		`sparcle_http_requests_total{method="POST"}`,
		// Evaluation-core series from the assignment engine.
		`sparcle_assign_gamma_evals_total`,
		`sparcle_assign_widest_cache_hits_total`,
		`sparcle_assign_widest_cache_misses_total`,
		`sparcle_assign_parallelism`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition was:\n%s", text)
	}

	// Withdrawing an app retires its rate gauge.
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/apps/b", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d", resp.StatusCode)
	}
	_, body = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if strings.Contains(string(body), `sparcle_app_allocated_rate{app="b"`) {
		t.Fatalf("withdrawn app still exposed:\n%s", body)
	}

	// /debug/vars serves the same registry as JSON.
	resp, body = do(t, http.MethodGet, ts.URL+"/debug/vars", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	var snap map[string]obs.FamilySnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("debug/vars decode: %v\n%s", err, body)
	}
	if _, ok := snap["sparcle_admissions_total"]; !ok {
		t.Fatalf("debug/vars missing admissions: %s", body)
	}
}

// TestHealthzBody checks the structured liveness response.
func TestHealthzBody(t *testing.T) {
	ts, _ := testServer(t)
	if resp, _ := do(t, http.MethodPost, ts.URL+"/apps", appJSON("b", "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", h.UptimeSeconds)
	}
	if h.Apps["best-effort"] != 1 || h.Apps["guaranteed-rate"] != 0 {
		t.Fatalf("apps = %v", h.Apps)
	}
	// The submit plus this healthz request itself must both be counted.
	if h.Requests < 2 {
		t.Fatalf("requests = %d, want >= 2", h.Requests)
	}
}

// TestConcurrentTelemetry hammers scheduler mutations against the
// lock-free telemetry endpoints; under -race this verifies that /metrics,
// /debug/vars and /healthz never tear against concurrent submits,
// fluctuations and withdrawals.
func TestConcurrentTelemetry(t *testing.T) {
	ts, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 128)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				name := fmt.Sprintf("app-%d-%d", i, j)
				resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON(name, "best-effort", `, "priority": 1`))
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Sprintf("submit %s: %d %s", name, resp.StatusCode, body)
					return
				}
				if resp, _ := do(t, http.MethodPost, ts.URL+"/fluctuation", `{"scale": {"ncp:m2": 0.5}}`); resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("fluctuation: %d", resp.StatusCode)
					return
				}
				if resp, _ := do(t, http.MethodDelete, ts.URL+"/apps/"+name, ""); resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("remove %s: %d", name, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				for _, path := range []string{"/metrics", "/debug/vars", "/healthz"} {
					if resp, _ := do(t, http.MethodGet, ts.URL+path, ""); resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("%s: %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
