package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/replica"
	"sparcle/internal/shard"
)

// Replication wiring. EnableReplication turns the server into one member
// of a 3-node replicated control plane (internal/replica): every
// mutating operation's journal record is proposed through the replica
// node and acknowledged only after a quorum holds it, followers keep a
// hot scheduler by applying committed records continuously, and the
// middleware redirects writes to the leader (421 with a Location
// header). The unsharded scheduler replicates its outcome records
// directly; the sharded router replicates the same tagged envelopes it
// journals, with followers buffering the envelope stream and
// materializing a router on demand (shard.Rebuild is a batch operation —
// its torn-operation reconcile pass must not run per record).

// ReplicationConfig assembles EnableReplication.
type ReplicationConfig struct {
	// NodeID names this node; it must be a key of Peers.
	NodeID string
	// Peers maps every cluster node's ID — this node included — to the
	// base URL of its HTTP API (e.g. "http://10.0.0.1:8080").
	Peers map[string]string
	// Dir is this node's journal directory.
	Dir string
	// Journal configures the node's write-ahead journal.
	Journal journal.Options
	// SnapshotEvery is the record count between journal snapshots
	// (default 256; <0 disables periodic snapshots).
	SnapshotEvery int
	// Heartbeat and ElectionTimeout tune the leader lease (defaults
	// 100ms and 10x the heartbeat).
	Heartbeat       time.Duration
	ElectionTimeout time.Duration
	// Seed seeds the election jitter (0 = time-seeded).
	Seed int64
	// Join boots this node as a cluster joiner: it starts with an EMPTY
	// membership (Peers then only needs this node's own id=url, its
	// advertised address) and stays a passive learner until an existing
	// leader admits it via POST /repl/members. The leader streams it the
	// log — through the snapshot path when the joiner is far behind — and
	// promotes it to voter once it has caught up.
	Join bool
}

// EnableReplication opens the node's journal and starts the replica.
// It replaces EnableJournal — the replica node owns journal recovery —
// and must run before the server takes traffic. The state machine
// restore that Start performs rebuilds the scheduler (or buffers the
// sharded envelope stream) exactly like journal recovery would, so a
// restarted node resumes from its local log and then heals any
// divergence against the current leader.
func (s *Server) EnableReplication(cfg ReplicationConfig) error {
	s.mu.Lock()
	armed := s.journal != nil || s.replica != nil
	s.mu.Unlock()
	if armed {
		return errors.New("server: replication and EnableJournal are mutually exclusive (the replica owns the journal)")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return fmt.Errorf("server: replication peers must include this node (%q)", cfg.NodeID)
	}
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	start := time.Now()

	opt := cfg.Journal
	if opt.Metrics == nil {
		opt.Metrics = s.metrics
	}
	j, err := journal.Open(cfg.Dir, opt)
	if err != nil {
		return fmt.Errorf("open journal: %w", err)
	}

	var sm replica.StateMachine
	if s.rt() != nil {
		ssm := &shardReplSM{s: s}
		s.replShard = ssm
		sm = ssm
	} else {
		sm = &schedReplSM{s: s}
	}

	peers := make(map[string]replica.Transport, len(cfg.Peers)-1)
	if !cfg.Join {
		// A joiner has no static peers: its membership (and so its
		// transports) arrive with the committed configuration stream.
		for id, url := range cfg.Peers {
			if id != cfg.NodeID {
				peers[id] = replica.NewHTTPTransport(url, nil)
			}
		}
	}
	// Mix the node ID into the election-jitter seed: operators naturally
	// start every node with the same -seed, and identical jitter streams
	// make candidates collide round after round (split votes, no leader).
	seed := cfg.Seed
	if seed != 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.NodeID))
		seed ^= int64(h.Sum64())
	}
	node, err := replica.New(replica.Config{
		ID:    cfg.NodeID,
		Peers: peers,
		Addrs: cfg.Peers,
		Join:  cfg.Join,
		// Members added at runtime dial their advertised address.
		TransportFactory: func(id, addr string) replica.Transport {
			return replica.NewHTTPTransport(addr, nil)
		},
		Journal:         j,
		SM:              sm,
		SnapshotEvery:   cfg.SnapshotEvery,
		Heartbeat:       cfg.Heartbeat,
		ElectionTimeout: cfg.ElectionTimeout,
		Metrics:         s.metrics,
		Seed:            seed,
	})
	if err != nil {
		j.Close()
		return err
	}

	// Publish before Start: the commit hooks armed during the state
	// machine restore propose through s.replica.
	s.mu.Lock()
	s.journal = j
	s.replica = node
	s.replH = node.Handler()
	s.replPeers = cfg.Peers
	s.mu.Unlock()

	if err := node.Start(); err != nil {
		s.mu.Lock()
		s.journal = nil
		s.replica = nil
		s.replH = nil
		s.replShard = nil
		s.mu.Unlock()
		j.Close()
		return fmt.Errorf("start replica: %w", err)
	}
	if rt := s.rt(); rt != nil {
		// The live (genesis) router never goes through a materialize, so
		// its envelope hook is armed here; materialized routers re-arm
		// their own.
		rt.SetEnvelopeHook(s.proposeEnvelope)
	}

	s.metrics.SetHelp(metricRecovery, "Duration of the last journal recovery in seconds.")
	s.metrics.Gauge(metricRecovery).Set(time.Since(start).Seconds())
	return nil
}

// Replica returns the server's replication node, nil unless
// EnableReplication succeeded. Tests use it to observe roles and terms.
func (s *Server) Replica() *replica.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// handleRepl forwards a peer RPC to the replica node. The route exists
// before EnableReplication runs (see Handler), so it resolves the node
// per request; peers hitting a node whose replica is not up yet get a
// 503 and retry on their next heartbeat.
func (s *Server) handleRepl(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.replH
	s.mu.Unlock()
	if h == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "replication not enabled"})
		return
	}
	h.ServeHTTP(w, r)
}

// memberChangeRequest is the body of POST /repl/members.
type memberChangeRequest struct {
	// Action is "add" (admit ID at URL as a learner), "promote" (turn a
	// caught-up learner into a voter) or "remove" (drop ID — the leader
	// itself may be removed; it hands off after the change commits).
	Action string `json:"action"`
	ID     string `json:"id"`
	URL    string `json:"url,omitempty"`
}

// membersResponse is the body of GET /repl/members (and of a successful
// change): the committed configuration as this node knows it.
type membersResponse struct {
	ConfSeq uint64                 `json:"confSeq"`
	Pending bool                   `json:"pendingChange"`
	Leader  string                 `json:"leader,omitempty"`
	Members []replica.MemberStatus `json:"members"`
}

func (s *Server) membersView(n *replica.Node) membersResponse {
	st := n.Status()
	resp := membersResponse{ConfSeq: st.ConfSeq, Pending: st.PendingConf, Leader: st.Leader, Members: st.Members}
	if resp.Members == nil {
		resp.Members = []replica.MemberStatus{}
	}
	return resp
}

// handleMembersGet reports the committed membership. Served by any node
// (followers too): operators diff the answers to see a change propagate.
func (s *Server) handleMembersGet(w http.ResponseWriter, r *http.Request) {
	n := s.Replica()
	if n == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "replication not enabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.membersView(n))
}

// handleMembersChange applies one membership change through the leader.
// The /repl/ prefix is exempt from the write gate, so leadership is
// enforced here by the replica itself: a follower answers 421 with the
// same redirect contract as any other write.
func (s *Server) handleMembersChange(w http.ResponseWriter, r *http.Request) {
	n := s.Replica()
	if n == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "replication not enabled"})
		return
	}
	var req memberChangeRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode member change: %v", err)})
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "member change needs an id"})
		return
	}
	var err error
	switch req.Action {
	case "add":
		if req.URL == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: `action "add" needs the new member's url`})
			return
		}
		err = n.AddMember(req.ID, strings.TrimSuffix(req.URL, "/"))
	case "promote":
		err = n.PromoteMember(req.ID)
	case "remove":
		err = n.RemoveMember(req.ID)
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown action %q (want add, promote or remove)", req.Action)})
		return
	}
	var nl *replica.NotLeaderError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, s.membersView(n))
	case errors.As(err, &nl):
		url := s.leaderBaseURL(n, nl.LeaderID)
		if url == "" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no leader elected yet; retry shortly"})
			return
		}
		w.Header().Set("Location", url+r.URL.RequestURI())
		writeJSON(w, http.StatusMisdirectedRequest, redirectResponse{Error: "not the leader", Leader: nl.LeaderID, URL: url})
	case errors.Is(err, replica.ErrConfChangeInFlight), errors.Is(err, replica.ErrLearnerLagging):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case errors.Is(err, replica.ErrUnknownMember):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case errors.Is(err, replica.ErrNoQuorum), errors.Is(err, replica.ErrNotReady), errors.Is(err, replica.ErrStopped):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// proposeRecord is the unsharded scheduler's commit hook under
// replication: the record is committed by quorum instead of a local
// fsync alone (the local append inside Propose still honors the fsync
// policy). On failure the local scheduler has applied an operation the
// log did not commit, so the state machine is reset to the committed
// prefix before the error (wrapped in ErrDurability upstream) fails the
// request.
func (s *Server) proposeRecord(rec *core.Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := s.replica.Propose(data); err != nil {
		s.replica.ForceRestore()
		return err
	}
	return nil
}

// proposeEnvelope is the sharded router's envelope hook under
// replication; failure semantics mirror proposeRecord (the router is
// rebuilt from the committed stream at the next materialize, which the
// write gate forces before the next write).
func (s *Server) proposeEnvelope(env *shard.Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := s.replica.Propose(data); err != nil {
		s.replica.ForceRestore()
		return err
	}
	return nil
}

// replicaWriteGate admits a mutating request only on a ready leader
// whose state machine has caught up with its log; otherwise it answers
// 421 (follower, leader known — with a Location header pointing at the
// leader) or 503 (no leader yet / leader still settling). Returns true
// when the request may proceed.
func (s *Server) replicaWriteGate(w http.ResponseWriter, r *http.Request) bool {
	n := s.replica
	if n == nil {
		return true
	}
	st := n.Status()
	switch {
	case st.Role == "leader" && st.Ready && st.LastApplied == st.LastSeq:
		if s.replShard != nil {
			// A freshly promoted shard leader materializes its buffered
			// envelope stream into a live router before the first write.
			if err := s.replShard.ensureFresh(); err != nil {
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("materialize replicated state: %v", err)})
				return false
			}
		}
		return true
	case st.Role == "leader":
		// Term barrier still committing, or a failed propose reset the
		// state machine and the committed tail is still re-applying.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "leader not ready; retry shortly"})
		return false
	default:
		url := s.leaderBaseURL(n, st.Leader)
		if url == "" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no leader elected yet; retry shortly"})
			return false
		}
		w.Header().Set("Location", url+r.URL.RequestURI())
		writeJSON(w, http.StatusMisdirectedRequest, redirectResponse{
			Error:  "not the leader",
			Leader: st.Leader,
			URL:    url,
		})
		return false
	}
}

// leaderBaseURL resolves the leader's base URL for redirects: the
// static bootstrap peer map first, then the committed membership's
// advertised address (members added at runtime are only known there).
func (s *Server) leaderBaseURL(n *replica.Node, leaderID string) string {
	if leaderID == "" {
		return ""
	}
	if url := s.replPeers[leaderID]; url != "" {
		return url
	}
	return strings.TrimSuffix(n.MemberAddr(leaderID), "/")
}

// redirectResponse is the 421 body a follower answers writes with.
type redirectResponse struct {
	Error string `json:"error"`
	// Leader is the leader's node ID; URL its base address. The Location
	// header carries the full redirect target.
	Leader string `json:"leader"`
	URL    string `json:"leaderUrl"`
}

// replicationHealth is the /healthz replication section: the node's
// Status plus the leader's base URL for clients that follow redirects.
type replicationHealth struct {
	replica.Status
	LeaderURL string `json:"leaderUrl,omitempty"`
}

func (s *Server) replicationHealth() *replicationHealth {
	s.mu.Lock()
	n, peers := s.replica, s.replPeers
	s.mu.Unlock()
	if n == nil {
		return nil
	}
	st := n.Status()
	url := peers[st.Leader]
	if url == "" {
		url = s.leaderBaseURL(n, st.Leader)
	}
	return &replicationHealth{Status: st, LeaderURL: url}
}

// --- unsharded state machine ---

// schedReplSM replicates the unsharded scheduler: committed records
// apply through core.ApplyCommitted under the server lock, snapshots are
// core.Snapshot exports, and a restore rebuilds the scheduler exactly
// like journal recovery (then re-arms the propose hook on the rebuilt
// instance).
type schedReplSM struct{ s *Server }

func (m *schedReplSM) Apply(data []byte) error {
	rec := &core.Record{}
	if err := json.Unmarshal(data, rec); err != nil {
		return fmt.Errorf("decode replicated record: %w", err)
	}
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	return m.s.sched.ApplyCommitted(rec)
}

func (m *schedReplSM) SnapshotWith(write func(state []byte) error) error {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	snap, err := m.s.sched.ExportSnapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return write(data)
}

func (m *schedReplSM) Restore(snapBytes []byte, entries [][]byte) error {
	var snap *core.Snapshot
	if len(snapBytes) > 0 {
		snap = &core.Snapshot{}
		if err := json.Unmarshal(snapBytes, snap); err != nil {
			return fmt.Errorf("decode replicated snapshot: %w", err)
		}
	}
	recs := make([]*core.Record, len(entries))
	for i := range entries {
		recs[i] = &core.Record{}
		if err := json.Unmarshal(entries[i], recs[i]); err != nil {
			return fmt.Errorf("decode replicated record %d: %w", i, err)
		}
	}
	s := m.s
	s.mu.Lock()
	opts := s.opts
	s.mu.Unlock()
	// Rebuild off-lock (it reads only the immutable network and the
	// decoded log), then swap under it.
	rebuilt, err := core.Rebuild(s.net, snap, recs, opts...)
	if err != nil {
		return fmt.Errorf("rebuild scheduler: %w", err)
	}
	s.mu.Lock()
	rebuilt.SetCommitHook(s.proposeRecord)
	s.sched = rebuilt
	s.mu.Unlock()
	return nil
}

// --- sharded state machine ---

// shardReplSM replicates the sharded router as its envelope stream.
// shard.Rebuild reconciles torn cross-region operations as a final
// batch pass, so committed envelopes cannot be folded into a live
// router one at a time; instead the follower buffers (snapshot, tail)
// and materializes a router from the buffer when one is needed — at
// snapshot cadence, and before a freshly promoted leader's first write.
// On the steady-state leader the live router is the source of truth
// (proposals mutate it directly before they are proposed) and the
// buffer stays clean.
type shardReplSM struct {
	s *Server

	mu sync.Mutex
	// snap and envs are the committed state as bytes: the newest
	// state-machine snapshot and every applied envelope after it.
	snap []byte
	envs [][]byte
	// dirty marks buffered state the live router does not reflect yet.
	dirty bool
}

func (m *shardReplSM) Apply(data []byte) error {
	m.mu.Lock()
	m.envs = append(m.envs, append([]byte(nil), data...))
	m.dirty = true
	m.mu.Unlock()
	return nil
}

func (m *shardReplSM) SnapshotWith(write func(state []byte) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Holding m.mu blocks Apply, freezing the node's applied index for
	// the duration; materializing first makes the live router cover the
	// whole buffer, and the router's own SnapshotWith holds every shard
	// lock across export and write.
	if err := m.materializeLocked(); err != nil {
		return err
	}
	var data []byte
	err := m.s.rt().SnapshotWith(func(snap *shard.RouterSnapshot) error {
		d, err := json.Marshal(snap)
		if err != nil {
			return err
		}
		data = d
		return write(d)
	})
	if err != nil {
		return err
	}
	m.snap = data
	m.envs = m.envs[:0]
	return nil
}

func (m *shardReplSM) Restore(snap []byte, entries [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(snap) == 0 && len(entries) == 0 {
		// Genesis: the live router already is the initial state.
		m.snap, m.envs, m.dirty = nil, nil, false
		return nil
	}
	m.snap = append([]byte(nil), snap...)
	m.envs = m.envs[:0]
	for _, e := range entries {
		m.envs = append(m.envs, append([]byte(nil), e...))
	}
	m.dirty = true
	return nil
}

// ensureFresh materializes the buffered committed state into the live
// router if anything changed since the last materialize.
func (m *shardReplSM) ensureFresh() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.materializeLocked()
}

// materializeLocked rebuilds the router from the buffered snapshot +
// envelope tail and swaps it in, re-arming spans, the envelope hook and
// group commit on the rebuilt instance. The buffer is kept (it still
// mirrors the committed log); only SnapshotWith resets it.
func (m *shardReplSM) materializeLocked() error {
	if !m.dirty {
		return nil
	}
	s := m.s
	var snap *shard.RouterSnapshot
	if len(m.snap) > 0 {
		snap = &shard.RouterSnapshot{}
		if err := json.Unmarshal(m.snap, snap); err != nil {
			return fmt.Errorf("decode replicated router snapshot: %w", err)
		}
	}
	envs := make([]*shard.Envelope, len(m.envs))
	for i := range m.envs {
		envs[i] = &shard.Envelope{}
		if err := json.Unmarshal(m.envs[i], envs[i]); err != nil {
			return fmt.Errorf("decode replicated envelope %d: %w", i, err)
		}
	}
	s.mu.Lock()
	opts := s.opts
	spans := s.spans
	groupOpt := s.groupOpt
	s.mu.Unlock()
	rebuilt, err := shard.Rebuild(s.net, s.shards, snap, envs,
		func(sub *network.Network, region int, ss *core.Snapshot, rs []*core.Record) (core.Control, error) {
			return core.Rebuild(sub, ss, rs, opts...)
		})
	if err != nil {
		return fmt.Errorf("rebuild sharded scheduler: %w", err)
	}
	if spans != nil {
		rebuilt.SetSpans(spans)
	}
	rebuilt.SetEnvelopeHook(s.proposeEnvelope)
	if groupOpt != nil {
		rebuilt.EnableGroupCommit(*groupOpt)
	}
	s.router.Store(rebuilt)
	m.dirty = false
	return nil
}
