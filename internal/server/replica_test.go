package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/journal"
)

// swapHandler lets a node's public address outlive its Server: the
// cluster's peer map is fixed at bootstrap, so crash/restart tests swap
// the handler behind a stable httptest URL instead of rebinding ports.
type swapHandler struct{ h atomic.Value }

func newSwapHandler() *swapHandler {
	s := &swapHandler{}
	s.set(downHandler)
	return s
}

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// downHandler is what a crashed node answers with: the listener is still
// bound (httptest keeps it) but every request fails like a dead process
// behind a load balancer.
var downHandler http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "node down", http.StatusBadGateway)
})

// replTestNode is one member of a test cluster: a stable public URL
// (via swapHandler) plus whatever Server currently backs it.
type replTestNode struct {
	id   string
	idx  int
	dir  string
	ts   *httptest.Server
	swap *swapHandler
	srv  *Server
}

type replTestCluster struct {
	t         *testing.T
	sharded   bool
	snapEvery int
	ids       []string
	nodes     map[string]*replTestNode
	peers     map[string]string
}

// startReplCluster binds three public addresses, then boots a replicated
// server behind each. Fsync is always-on so a crash loses nothing the
// journal acked.
func startReplCluster(t *testing.T, sharded bool, snapEvery int) *replTestCluster {
	t.Helper()
	c := &replTestCluster{
		t:         t,
		sharded:   sharded,
		snapEvery: snapEvery,
		ids:       []string{"n0", "n1", "n2"},
		nodes:     make(map[string]*replTestNode),
		peers:     make(map[string]string),
	}
	for i, id := range c.ids {
		n := &replTestNode{id: id, idx: i, dir: t.TempDir(), swap: newSwapHandler()}
		n.ts = httptest.NewServer(n.swap)
		t.Cleanup(n.ts.Close)
		c.nodes[id] = n
		c.peers[id] = n.ts.URL
	}
	for _, id := range c.ids {
		c.boot(id)
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			if n.srv != nil {
				n.srv.Close()
			}
		}
	})
	return c
}

// boot starts (or restarts, over the same journal dir) the server behind
// node id and swaps it live.
func (c *replTestCluster) boot(id string) *Server {
	c.t.Helper()
	n := c.nodes[id]
	var srv *Server
	if c.sharded {
		s, err := NewSharded(shardTestNet(c.t), 2, core.WithRandSeed(5))
		if err != nil {
			c.t.Fatalf("NewSharded(%s): %v", id, err)
		}
		srv = s
	} else {
		srv = New(testNet(c.t), core.WithRandSeed(5))
	}
	if err := srv.EnableReplication(ReplicationConfig{
		NodeID:          id,
		Peers:           c.peers,
		Dir:             n.dir,
		Journal:         journal.Options{Fsync: journal.SyncAlways},
		SnapshotEvery:   c.snapEvery,
		Heartbeat:       10 * time.Millisecond,
		ElectionTimeout: 150 * time.Millisecond,
		Seed:            int64(n.idx + 1),
	}); err != nil {
		c.t.Fatalf("EnableReplication(%s): %v", id, err)
	}
	n.srv = srv
	n.swap.set(srv.Handler())
	return srv
}

// crash takes node id off the network and stops its process. The journal
// directory survives for a later boot, like a machine rebooting.
func (c *replTestCluster) crash(id string) {
	c.t.Helper()
	n := c.nodes[id]
	n.swap.set(downHandler)
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
}

// waitLeader polls until one live node is a ready leader whose state
// machine has caught its log (i.e. the write gate admits requests).
func (c *replTestCluster) waitLeader(t *testing.T) *replTestNode {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, id := range c.ids {
			n := c.nodes[id]
			if n.srv == nil {
				continue
			}
			st := n.srv.Replica().Status()
			if st.Role == "leader" && st.Ready && st.LastApplied == st.LastSeq {
				return n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no ready leader elected")
	return nil
}

// waitConverged polls until every live node has applied the same log
// position; after it returns, the live schedulers reflect an identical
// committed history.
func (c *replTestCluster) waitConverged(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var max uint64
		synced := true
		live := 0
		for _, n := range c.nodes {
			if n.srv == nil {
				continue
			}
			live++
			st := n.srv.Replica().Status()
			if st.LastApplied != st.LastSeq || st.CommitIndex != st.LastSeq {
				synced = false
			}
			if max == 0 {
				max = st.LastSeq
			} else if st.LastSeq != max {
				synced = false
				if st.LastSeq > max {
					max = st.LastSeq
				}
			}
		}
		if synced && live > 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live nodes did not converge")
}

// postLeader submits body to path, following one 421 hop; election churn
// between waitLeader and the request must not flake the test.
func (c *replTestCluster) postLeader(t *testing.T, n *replTestNode, path, body string) (*http.Response, []byte) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	url := n.ts.URL
	for {
		resp, b := do(t, http.MethodPost, url+path, body)
		if resp.StatusCode == http.StatusMisdirectedRequest {
			var redir struct {
				URL string `json:"leaderUrl"`
			}
			if json.Unmarshal(b, &redir) == nil && redir.URL != "" {
				url = redir.URL
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		return resp, b
	}
}

// TestReplicatedClusterQuorumAck boots a 3-node cluster, writes through
// the leader, checks the follower redirect and the /healthz mirror, and
// asserts every node's scheduler converges to the same state.
func TestReplicatedClusterQuorumAck(t *testing.T) {
	c := startReplCluster(t, false, 0)
	leader := c.waitLeader(t)

	for i := 0; i < 4; i++ {
		resp, b := c.postLeader(t, leader, "/apps", appJSON(fmt.Sprintf("app-%d", i), "best-effort", `, "priority": 1`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit app-%d: %d %s", i, resp.StatusCode, b)
		}
	}
	if resp, b := do(t, http.MethodDelete, leader.ts.URL+"/apps/app-1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d %s", resp.StatusCode, b)
	}

	// A write to a follower answers 421 with the leader's address.
	leaderID := leader.srv.Replica().Status().ID
	for _, n := range c.nodes {
		if n.id == leaderID {
			continue
		}
		resp, b := do(t, http.MethodPost, n.ts.URL+"/apps", appJSON("misdirected", "best-effort", `, "priority": 1`))
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("follower write: %d %s", resp.StatusCode, b)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leader.ts.URL) || !strings.HasSuffix(loc, "/apps") {
			t.Fatalf("Location = %q, want %s/apps", loc, leader.ts.URL)
		}
		var redir redirectResponse
		if err := json.Unmarshal(b, &redir); err != nil || redir.URL != leader.ts.URL || redir.Leader != leaderID {
			t.Fatalf("421 body = %s", b)
		}
		break
	}

	// /healthz mirrors the node's replication status.
	resp, b := do(t, http.MethodGet, leader.ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	var hz struct {
		Replication *replicationHealth `json:"replication"`
	}
	if err := json.Unmarshal(b, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Replication == nil || hz.Replication.Role != "leader" || !hz.Replication.Ready {
		t.Fatalf("healthz replication = %+v", hz.Replication)
	}
	if hz.Replication.CommitIndex < 5 {
		t.Fatalf("commitIndex = %d, want >= 5 (barrier + 4 submits + remove)", hz.Replication.CommitIndex)
	}

	c.waitConverged(t)
	want := getApps(t, leader.ts.URL)
	for _, n := range c.nodes {
		if got := getApps(t, n.ts.URL); got != want {
			t.Fatalf("node %s diverged\nleader: %s\nnode:   %s", n.id, want, got)
		}
	}
}

// TestReplicatedFailover kills the leader mid-stream and asserts a
// survivor takes over with every acked admission intact.
func TestReplicatedFailover(t *testing.T) {
	c := startReplCluster(t, false, 0)
	leader := c.waitLeader(t)

	names := []string{"f-0", "f-1", "f-2"}
	for _, name := range names {
		resp, b := c.postLeader(t, leader, "/apps", appJSON(name, "best-effort", `, "priority": 1`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: %d %s", name, resp.StatusCode, b)
		}
	}
	c.waitConverged(t)
	want := getApps(t, leader.ts.URL)

	c.crash(leader.id)
	next := c.waitLeader(t)
	if next.id == leader.id {
		t.Fatalf("crashed node %s still leading", leader.id)
	}

	// Nothing acked was lost across the failover.
	if got := getApps(t, next.ts.URL); got != want {
		t.Fatalf("failover lost state\nbefore: %s\nafter:  %s", want, got)
	}
	// The new leader accepts writes.
	resp, b := c.postLeader(t, next, "/apps", appJSON("post-failover", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-failover submit: %d %s", resp.StatusCode, b)
	}
	c.waitConverged(t)
	want = getApps(t, next.ts.URL)
	if !strings.Contains(want, "post-failover") {
		t.Fatalf("post-failover app missing: %s", want)
	}
	for _, n := range c.nodes {
		if n.srv == nil {
			continue
		}
		if got := getApps(t, n.ts.URL); got != want {
			t.Fatalf("survivor %s diverged\nleader: %s\nnode:   %s", n.id, want, got)
		}
	}
}

// TestReplicatedFollowerCatchup crashes a follower, advances the leader
// past a snapshot boundary so the follower's tail is no longer in the
// leader's log, reboots it, and asserts it converges via snapshot
// install.
func TestReplicatedFollowerCatchup(t *testing.T) {
	c := startReplCluster(t, false, 3)
	leader := c.waitLeader(t)

	resp, b := c.postLeader(t, leader, "/apps", appJSON("early", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit early: %d %s", resp.StatusCode, b)
	}
	c.waitConverged(t)

	var lagging *replTestNode
	for _, id := range c.ids {
		if id != leader.id {
			lagging = c.nodes[id]
			break
		}
	}
	c.crash(lagging.id)

	for i := 0; i < 10; i++ {
		resp, b := c.postLeader(t, leader, "/apps", appJSON(fmt.Sprintf("deep-%d", i), "best-effort", `, "priority": 1`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit deep-%d: %d %s", i, resp.StatusCode, b)
		}
	}
	lst := leader.srv.Replica().Status()
	if lst.SnapshotSeq < 3 {
		t.Fatalf("leader never snapshotted: %+v", lst)
	}

	c.boot(lagging.id)
	c.waitConverged(t)
	want := getApps(t, leader.ts.URL)
	if got := getApps(t, lagging.ts.URL); got != want {
		t.Fatalf("caught-up follower diverged\nleader:   %s\nfollower: %s", want, got)
	}
	// The reboot resumed from a snapshot at or past the leader's base —
	// the pruned tail was never replayed record by record.
	if st := lagging.srv.Replica().Status(); st.SnapshotSeq < 3 {
		t.Fatalf("follower caught up without a snapshot install: %+v", st)
	}
}

// TestReplicatedDeposedLeaderTruncates drives the unknown-outcome path:
// a leader that cannot reach quorum keeps the un-acked record in its
// local journal; when it returns after a new quorum has committed past
// that index, the orphan is truncated, not resurrected.
func TestReplicatedDeposedLeaderTruncates(t *testing.T) {
	c := startReplCluster(t, false, 0)
	leader := c.waitLeader(t)

	resp, b := c.postLeader(t, leader, "/apps", appJSON("acked", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit acked: %d %s", resp.StatusCode, b)
	}
	c.waitConverged(t)

	// Isolate the leader by crashing both followers, then write to it:
	// no quorum, so the request must fail — but the record is already in
	// the deposed leader's journal.
	for _, id := range c.ids {
		if id != leader.id {
			c.crash(id)
		}
	}
	resp, b = do(t, http.MethodPost, leader.ts.URL+"/apps", appJSON("orphan", "best-effort", `, "priority": 1`))
	if resp.StatusCode == http.StatusCreated {
		t.Fatalf("quorumless write was acked: %d %s", resp.StatusCode, b)
	}

	// The old leader goes down too; the followers come back, elect among
	// themselves, and commit new history past the orphan's index.
	c.crash(leader.id)
	for _, id := range c.ids {
		if id != leader.id {
			c.boot(id)
		}
	}
	next := c.waitLeader(t)
	resp, b = c.postLeader(t, next, "/apps", appJSON("new-era", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("new-era submit: %d %s", resp.StatusCode, b)
	}

	// The deposed leader reboots with the orphan in its log and must
	// truncate it in favor of the new quorum's history.
	c.boot(leader.id)
	c.waitConverged(t)
	final := c.waitLeader(t)
	want := getApps(t, final.ts.URL)
	if strings.Contains(want, "orphan") {
		t.Fatalf("un-acked record resurrected: %s", want)
	}
	for _, name := range []string{"acked", "new-era"} {
		if !strings.Contains(want, name) {
			t.Fatalf("acked app %q lost: %s", name, want)
		}
	}
	for _, n := range c.nodes {
		if got := getApps(t, n.ts.URL); got != want {
			t.Fatalf("node %s diverged after truncation\nwant: %s\ngot:  %s", n.id, want, got)
		}
	}
}

// TestReplicatedShardFailover replicates the sharded router: envelopes
// stream to followers, and a freshly promoted leader materializes the
// buffered stream into a live router before its first write.
func TestReplicatedShardFailover(t *testing.T) {
	c := startReplCluster(t, true, 0)
	leader := c.waitLeader(t)

	for _, app := range []struct{ name, from, to string }{
		{"inA", "a0", "a1"},
		{"inB", "b0", "b1"},
		{"crossAB", "a0", "b1"},
	} {
		resp, b := c.postLeader(t, leader, "/apps", shardAppJSON(app.name, app.from, app.to, shardBEQoS))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %s: %d %s", app.name, resp.StatusCode, b)
		}
	}
	c.waitConverged(t)

	c.crash(leader.id)
	next := c.waitLeader(t)

	// First write on the new leader forces the materialize.
	resp, b := c.postLeader(t, next, "/apps", shardAppJSON("after", "a0", "a1", shardBEQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-failover submit: %d %s", resp.StatusCode, b)
	}
	got := getApps(t, next.ts.URL)
	// A cross-region app lists as its two per-shard halves (name@0 and
	// name@1), so match names as substrings.
	for _, name := range []string{"inA", "inB", "crossAB", "after"} {
		if !strings.Contains(got, name) {
			t.Fatalf("app %q missing after shard failover: %s", name, got)
		}
	}
}

// bootJoin starts a brand-new node (fresh ID, fresh journal, empty
// membership) in Join mode behind its own stable URL and registers it
// with the cluster for later crash/boot cycles.
func (c *replTestCluster) bootJoin(id string) *replTestNode {
	c.t.Helper()
	n := &replTestNode{id: id, idx: len(c.ids), dir: c.t.TempDir(), swap: newSwapHandler()}
	n.ts = httptest.NewServer(n.swap)
	c.t.Cleanup(n.ts.Close)
	c.nodes[id] = n
	c.ids = append(c.ids, id)

	srv := New(testNet(c.t), core.WithRandSeed(5))
	if err := srv.EnableReplication(ReplicationConfig{
		NodeID:          id,
		Peers:           map[string]string{id: n.ts.URL},
		Dir:             n.dir,
		Journal:         journal.Options{Fsync: journal.SyncAlways},
		SnapshotEvery:   c.snapEvery,
		Heartbeat:       10 * time.Millisecond,
		ElectionTimeout: 150 * time.Millisecond,
		Seed:            int64(n.idx + 1),
		Join:            true,
	}); err != nil {
		c.t.Fatalf("EnableReplication(join %s): %v", id, err)
	}
	n.srv = srv
	n.swap.set(srv.Handler())
	return n
}

// getMembers fetches GET /repl/members from one node.
func getMembers(t *testing.T, base string) membersResponse {
	t.Helper()
	resp, b := do(t, http.MethodGet, base+"/repl/members", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /repl/members: %d %s", resp.StatusCode, b)
	}
	var m membersResponse
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("decode members: %v (%s)", err, b)
	}
	return m
}

// TestReplicatedMembershipJoinAndRemove drives a live membership cycle
// end to end over HTTP: a fresh node joins through POST /repl/members,
// catches up, is auto-promoted to voter, serves identical state; then a
// dead original member is removed and the cluster keeps writing.
func TestReplicatedMembershipJoinAndRemove(t *testing.T) {
	c := startReplCluster(t, false, 0)
	leader := c.waitLeader(t)

	for i := 0; i < 3; i++ {
		resp, b := c.postLeader(t, leader, "/apps", appJSON(fmt.Sprintf("m-%d", i), "best-effort", `, "priority": 1`))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit m-%d: %d %s", i, resp.StatusCode, b)
		}
	}

	// A write-shaped request to the members route on a follower answers
	// the standard 421 redirect contract.
	leaderID := leader.srv.Replica().Status().ID
	for _, id := range c.ids {
		if id == leaderID {
			continue
		}
		resp, b := do(t, http.MethodPost, c.nodes[id].ts.URL+"/repl/members", `{"action":"add","id":"n3","url":"http://unused"}`)
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("follower member change: %d %s", resp.StatusCode, b)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leader.ts.URL) {
			t.Fatalf("Location = %q, want prefix %s", loc, leader.ts.URL)
		}
		break
	}

	// Join a fresh fourth node through the admin route.
	joiner := c.bootJoin("n3")
	resp, b := c.postLeader(t, leader, "/repl/members", fmt.Sprintf(`{"action":"add","id":"n3","url":%q}`, joiner.ts.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add n3: %d %s", resp.StatusCode, b)
	}
	// The leader streams it the log and auto-promotes it once caught up.
	deadline := time.Now().Add(15 * time.Second)
	for {
		m := getMembers(t, leader.ts.URL)
		var voter bool
		for _, mem := range m.Members {
			if mem.ID == "n3" && mem.Voter {
				voter = true
			}
		}
		if voter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n3 never promoted: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.waitConverged(t)
	want := getApps(t, leader.ts.URL)
	if got := getApps(t, joiner.ts.URL); got != want {
		t.Fatalf("joined node diverged\nleader: %s\njoiner: %s", want, got)
	}
	// The joiner's /healthz mirrors the 4-member configuration.
	hresp, hb := do(t, http.MethodGet, joiner.ts.URL+"/healthz", "")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("joiner healthz: %d %s", hresp.StatusCode, hb)
	}
	var hz struct {
		Replication *replicationHealth `json:"replication"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil || hz.Replication == nil {
		t.Fatalf("joiner healthz replication: %v (%s)", err, hb)
	}
	if len(hz.Replication.Members) != 4 || !hz.Replication.Voter {
		t.Fatalf("joiner healthz members = %+v", hz.Replication)
	}

	// Kill one ORIGINAL node and remove it; the 3 survivors (2 original +
	// the joiner) keep a quorum and keep accepting writes.
	var dead string
	for _, id := range []string{"n0", "n1", "n2"} {
		if id != leaderID {
			dead = id
			break
		}
	}
	c.crash(dead)
	resp, b = c.postLeader(t, leader, "/repl/members", fmt.Sprintf(`{"action":"remove","id":%q}`, dead))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove %s: %d %s", dead, resp.StatusCode, b)
	}
	for {
		m := getMembers(t, leader.ts.URL)
		if len(m.Members) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never removed: %+v", dead, m)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Removing an unknown member is a 404.
	if resp, b := c.postLeader(t, leader, "/repl/members", `{"action":"remove","id":"ghost"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove ghost: %d %s", resp.StatusCode, b)
	}
	resp, b = c.postLeader(t, leader, "/apps", appJSON("post-remove", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-remove submit: %d %s", resp.StatusCode, b)
	}
	c.waitConverged(t)
	if got := getApps(t, joiner.ts.URL); !strings.Contains(got, "post-remove") {
		t.Fatalf("joiner missing post-remove write: %s", got)
	}
}
