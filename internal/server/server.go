// Package server exposes a running SPARCLE scheduler over HTTP, turning
// the library into the long-lived control-plane service a dispersed
// computing deployment needs: applications are submitted, inspected,
// repaired and withdrawn through a small JSON API, and capacity
// fluctuations observed by monitoring can be pushed in.
//
//	GET    /healthz            liveness, uptime and admission summary
//	GET    /metrics            Prometheus text exposition of all metrics
//	GET    /debug/vars         JSON snapshot of the same metrics
//	GET    /network            the network topology and capacities
//	GET    /apps               all admitted applications with rates
//	POST   /apps               submit one scenario.AppSpec
//	POST   /apps/batch         submit several specs as one atomic batch
//	DELETE /apps/{name}        withdraw an application
//	POST   /apps/{name}/repair re-place a violated GR application
//	POST   /fluctuation        apply element capacity scales
//
// With EnableJournal the server is durable: every mutating operation is
// committed to a write-ahead journal before its response is sent, and a
// restarted server recovers the exact pre-crash scheduler from snapshot
// plus bounded replay. While recovery runs, mutating routes answer 503.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/obs"
	"sparcle/internal/placement"
	"sparcle/internal/replica"
	"sparcle/internal/scenario"
	"sparcle/internal/shard"
	"sparcle/internal/taskgraph"
)

// Server wraps a scheduler with a JSON HTTP API. All scheduler operations
// are serialized under mu; the scheduler itself is not concurrency safe.
// The metrics registry has its own synchronization, so /metrics and
// /debug/vars are served without blocking the scheduler.
type Server struct {
	mu       sync.Mutex
	net      *network.Network
	sched    *core.Scheduler
	metrics  *obs.Registry
	start    time.Time
	requests atomic.Uint64

	// opts are the scheduler options New resolved, kept so EnableJournal
	// can rebuild a recovered scheduler under identical configuration.
	opts []core.Option
	// journal is non-nil once EnableJournal succeeds.
	journal *journal.Journal
	// recovering gates mutating routes behind 503 while journal recovery
	// rebuilds the scheduler.
	recovering atomic.Bool
	// spans is non-nil once EnableSpans armed request tracing (spans.go).
	spans *obs.SpanTracer
	// group is non-nil once EnableGroupCommit routed POST /apps through
	// the group-commit queue (group.go). In shard mode it stays nil and
	// the router carries one committer per shard instead.
	group *core.GroupCommitter
	// groupOpt records the group-commit configuration so a replicated
	// follower that materializes a fresh router can re-arm it (replica.go).
	groupOpt *core.GroupOptions

	// router is non-nil in shard mode (NewSharded): requests then route
	// through the region-sharded admission router instead of sched, and
	// mu no longer serializes scheduler work — each shard carries its own
	// lock (shard.go). It is an atomic pointer because a replicated
	// follower rebuilds and swaps the router at runtime when it
	// materializes buffered envelopes (replica.go); read it through rt().
	router atomic.Pointer[shard.Router]
	// shards is the region count the router was built with.
	shards int
	// snapshotting dedups the asynchronous shard-mode journal snapshots.
	snapshotting atomic.Bool

	// replica is non-nil once EnableReplication armed the 3-node
	// replicated control plane; replH serves its peer RPCs, replPeers
	// maps node IDs to base URLs for the follower-redirect Location
	// header, and replShard buffers the envelope stream in shard mode
	// (replica.go). All are written once under mu before the recovering
	// gate drops, so the write gate's unlocked reads are ordered after
	// them.
	replica   *replica.Node
	replH     http.Handler
	replPeers map[string]string
	replShard *shardReplSM
}

// rt returns the admission router, nil outside shard mode. Handlers load
// it once per request: a replicated follower may swap in a freshly
// materialized router at any moment, and mixing two routers inside one
// request would cross state generations.
func (s *Server) rt() *shard.Router { return s.router.Load() }

// New returns a Server scheduling onto net. The server always carries a
// metrics registry (exposed on /metrics and via Metrics); the scheduler is
// wired to it before any caller-supplied options are applied.
func New(net *network.Network, opts ...core.Option) *Server {
	reg := obs.NewRegistry()
	opts = append([]core.Option{core.WithMetrics(reg)}, opts...)
	return &Server{
		net:     net,
		sched:   core.New(net, opts...),
		metrics: reg,
		start:   time.Now(),
		opts:    opts,
	}
}

// Metrics returns the server's metrics registry, for callers that want to
// register their own series alongside the scheduler's.
func (s *Server) Metrics() *obs.Registry {
	return s.metrics
}

// Handler returns the HTTP handler implementing the API. Every request is
// counted in sparcle_http_requests_total (labeled by method) and in the
// cumulative total reported by /healthz, and handler panics are converted
// into 500 responses (counted in sparcle_http_panics_total) instead of
// tearing down the connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/latency", s.handleLatency)
	mux.HandleFunc("GET /network", s.handleNetwork)
	mux.HandleFunc("GET /apps", s.handleListApps)
	mux.HandleFunc("POST /apps", s.handleSubmit)
	mux.HandleFunc("POST /apps/batch", s.handleSubmitBatch)
	mux.HandleFunc("DELETE /apps/{name}", s.handleRemove)
	mux.HandleFunc("POST /apps/{name}/repair", s.handleRepair)
	mux.HandleFunc("POST /fluctuation", s.handleFluctuation)
	// Replication RPCs (append, vote, snapshot install) between peers.
	// Mounted unconditionally and dispatched lazily: peer URLs are only
	// known once every listener is bound, so EnableReplication runs after
	// Handler during cluster bootstrap. The membership admin routes are
	// more specific than the RPC prefix, so they win dispatch (replica.go).
	mux.HandleFunc("POST /repl/", s.handleRepl)
	mux.HandleFunc("GET /repl/members", s.handleMembersGet)
	mux.HandleFunc("POST /repl/members", s.handleMembersChange)
	return s.middleware(mux)
}

// middleware wraps next with request counting and panic recovery. A
// panicking handler answers 500 with a JSON error body; the panic value is
// not echoed (it may hold internals), only counted and summarized.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The sentinel asks for exactly the abort behaviour.
				panic(rec)
			}
			s.metrics.Counter("sparcle_http_panics_total").Inc()
			// Preserve the evidence: the flight ring holds the traces
			// leading up to the panic (nil-safe, no-op without a dump dir).
			_, _ = s.spans.DumpFlight("panic")
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
		}()
		s.requests.Add(1)
		s.metrics.Counter("sparcle_http_requests_total", obs.L("method", r.Method)).Inc()
		if r.Method != http.MethodGet && !strings.HasPrefix(r.URL.Path, "/repl/") {
			// Replication RPCs are exempt from both gates: they must flow
			// on followers and during recovery or the cluster cannot heal.
			if s.recovering.Load() {
				// Journal recovery is rebuilding the scheduler; nothing may
				// mutate (or journal) until the rebuilt state is live.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "recovering from journal; retry shortly"})
				return
			}
			if !s.replicaWriteGate(w, r) {
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// healthzResponse is the body of GET /healthz.
type healthzResponse struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptimeSeconds"`
	Apps          map[string]int `json:"apps"`
	Requests      uint64         `json:"requests"`
	Journal       journalHealth  `json:"journal"`
	// Sharding is present in shard mode: per-shard admissions, lease
	// count and border-link occupancy.
	Sharding *shard.Stats `json:"sharding,omitempty"`
	// GroupCommit is present when -group-commit is enabled: groups
	// committed, followers coalesced, apps admitted through the queue.
	GroupCommit *core.GroupStats `json:"groupCommit,omitempty"`
	// Replication is present when -replicate is enabled: this node's
	// role, term, commit index and the current leader.
	Replication *replicationHealth `json:"replication,omitempty"`
}

// journalHealth is the durability section of /healthz: whether a
// write-ahead journal is armed, its fsync policy, the last committed
// record index, how far the log has grown past the newest snapshot, and
// whether recovery is still rebuilding the scheduler.
type journalHealth struct {
	Enabled bool `json:"enabled"`
	// Fsync is the policy spelling ("always", "interval", "never").
	Fsync string `json:"fsync,omitempty"`
	// LastSeq is the sequence number of the last committed record; an
	// operator comparing it across replicas sees which is ahead.
	LastSeq uint64 `json:"lastSeq,omitempty"`
	// SinceSnapshot is the replay bound a crash right now would pay.
	SinceSnapshot int  `json:"sinceSnapshot,omitempty"`
	Recovering    bool `json:"recovering"`
	// RecoverySeconds is the duration of the last completed recovery.
	RecoverySeconds float64 `json:"recoverySeconds,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var apps map[string]int
	var sharding *shard.Stats
	s.mu.Lock()
	j := s.journal
	s.mu.Unlock()
	if rt := s.rt(); rt != nil {
		st := rt.Stats()
		sharding = &st
		gr, be := 0, 0
		for _, sh := range st.Shards {
			gr += sh.GRApps
			be += sh.BEApps
		}
		apps = map[string]int{
			core.GuaranteedRate.String(): gr,
			core.BestEffort.String():     be,
		}
	} else {
		s.mu.Lock()
		apps = map[string]int{
			core.GuaranteedRate.String(): len(s.sched.GRApps()),
			core.BestEffort.String():     len(s.sched.BEApps()),
		}
		s.mu.Unlock()
	}
	jh := journalHealth{Recovering: s.recovering.Load()}
	if j != nil {
		jh.Enabled = true
		jh.Fsync = j.FsyncPolicy().String()
		jh.LastSeq = j.LastSeq()
		jh.SinceSnapshot = j.SinceSnapshot()
		jh.RecoverySeconds = s.metrics.Gauge(metricRecovery).Value()
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Apps:          apps,
		Requests:      s.requests.Load(),
		Journal:       jh,
		Sharding:      sharding,
		GroupCommit:   s.groupStats(),
		Replication:   s.replicationHealth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The registry is concurrency safe on its own: no mu here.
	if s.rt() != nil {
		s.updateShardMetrics()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// --- responses ---

type errorResponse struct {
	Error string `json:"error"`
}

type ncpView struct {
	Name     string             `json:"name"`
	Capacity map[string]float64 `json:"capacity,omitempty"`
	FailProb float64            `json:"failProb,omitempty"`
}

type linkView struct {
	Name      string  `json:"name"`
	A         string  `json:"a"`
	B         string  `json:"b"`
	Bandwidth float64 `json:"bandwidth"`
	FailProb  float64 `json:"failProb,omitempty"`
	Directed  bool    `json:"directed,omitempty"`
}

type networkView struct {
	Name  string     `json:"name"`
	NCPs  []ncpView  `json:"ncps"`
	Links []linkView `json:"links"`
}

type pathView struct {
	Rate  float64           `json:"rate"`
	Hosts map[string]string `json:"hosts"`
}

type appView struct {
	Name         string     `json:"name"`
	Class        string     `json:"class"`
	TotalRate    float64    `json:"totalRate"`
	Availability float64    `json:"availability"`
	Paths        []pathView `json:"paths"`
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	view := networkView{Name: s.net.Name()}
	for v := 0; v < s.net.NumNCPs(); v++ {
		ncp := s.net.NCP(network.NCPID(v))
		caps := map[string]float64{}
		for k, a := range ncp.Capacity {
			caps[string(k)] = a
		}
		view.NCPs = append(view.NCPs, ncpView{Name: ncp.Name, Capacity: caps, FailProb: ncp.FailProb})
	}
	for l := 0; l < s.net.NumLinks(); l++ {
		link := s.net.Link(network.LinkID(l))
		view.Links = append(view.Links, linkView{
			Name:      link.Name,
			A:         s.net.NCP(link.A).Name,
			B:         s.net.NCP(link.B).Name,
			Bandwidth: link.Bandwidth,
			FailProb:  link.FailProb,
			Directed:  link.Directed,
		})
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardListApps(w, r)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	apps := []appView{}
	for _, pa := range append(s.sched.GRApps(), s.sched.BEApps()...) {
		apps = append(apps, s.appView(pa))
	}
	writeJSON(w, http.StatusOK, apps)
}

func (s *Server) appView(pa *core.PlacedApp) appView {
	return appViewOn(s.net, pa)
}

// appViewOn renders a placement against the network it was made on —
// the parent network for the unsharded scheduler, a region sub-network
// for a shard's placement (path hosts are region-local NCP ids there).
func appViewOn(netw *network.Network, pa *core.PlacedApp) appView {
	view := appView{
		Name:         pa.App.Name,
		Class:        pa.App.QoS.Class.String(),
		TotalRate:    pa.TotalRate(),
		Availability: pa.Availability,
	}
	for _, path := range pa.Paths {
		hosts := map[string]string{}
		for ct := 0; ct < pa.App.Graph.NumCTs(); ct++ {
			id := taskgraph.CTID(ct)
			hosts[pa.App.Graph.CT(id).Name] = netw.NCP(path.P.Host(id)).Name
		}
		view.Paths = append(view.Paths, pathView{Rate: path.Rate, Hosts: hosts})
	}
	return view
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardSubmit(w, r)
		return
	}
	root := s.spans.Start("http.submit")
	defer root.End()
	dsp := root.Child("http.decode")
	var spec scenario.AppSpec
	err := decodeStrict(r.Body, &spec)
	dsp.End()
	if err != nil {
		root.SetAttr("outcome", "bad-request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode app spec: %v", err)})
		return
	}
	root.SetAttr("app", spec.Name)
	if s.group != nil {
		// Group path: build off-lock, then join the commit queue. The
		// committer's commit function takes the lock once per group and
		// runs the duplicate-name check there.
		bsp := root.Child("http.build")
		app, err := scenario.BuildApp(spec, s.net)
		bsp.End()
		if err != nil {
			root.SetAttr("outcome", "bad-request")
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		res, gerr := s.group.Submit(app, root)
		if err := res.Err; err != nil || gerr != nil {
			if err == nil {
				err = gerr
			}
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrRejected) {
				status = http.StatusConflict
			}
			root.SetAttr("outcome", "rejected")
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		root.SetAttr("outcome", "admitted")
		s.mu.Lock()
		view := s.appView(res.App)
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, view)
		return
	}
	defer s.lockWithSpan(root)()
	bsp := root.Child("http.build")
	app, err := scenario.BuildApp(spec, s.net)
	bsp.End()
	if err != nil {
		root.SetAttr("outcome", "bad-request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if s.sched.HasApp(app.Name) {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("application %q already admitted", app.Name)})
		return
	}
	pa, err := s.sched.Submit(app)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrRejected) {
			status = http.StatusConflict
		}
		root.SetAttr("outcome", "rejected")
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	root.SetAttr("outcome", "admitted")
	writeJSON(w, http.StatusCreated, s.appView(pa))
}

// batchRequest is the body of POST /apps/batch.
type batchRequest struct {
	Apps []scenario.AppSpec `json:"apps"`
}

// batchVerdict is one application's outcome inside a batch response.
type batchVerdict struct {
	Name     string   `json:"name"`
	Admitted bool     `json:"admitted"`
	Error    string   `json:"error,omitempty"`
	App      *appView `json:"app,omitempty"`
}

type batchResponse struct {
	Verdicts []batchVerdict `json:"verdicts"`
	Error    string         `json:"error,omitempty"`
}

// handleSubmitBatch admits K applications as one atomic operation: a
// single allocation solve and a single journal record cover the whole
// batch. Per-app failures (bad spec, duplicate name, rejection) are
// verdicts, not HTTP errors; the call answers 200 with one verdict per
// input. Only a durability failure (journal append lost) or a whole-batch
// allocation failure changes the status.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardSubmitBatch(w, r)
		return
	}
	root := s.spans.Start("http.batch")
	defer root.End()
	dsp := root.Child("http.decode")
	var req batchRequest
	err := decodeStrict(r.Body, &req)
	dsp.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode batch: %v", err)})
		return
	}
	root.SetInt("apps", int64(len(req.Apps)))

	verdicts := make([]batchVerdict, len(req.Apps))
	var apps []core.App
	var appIdx []int
	var results []core.BatchResult
	if s.group != nil {
		// Group path: build off-lock and enter the commit queue as one
		// indivisible entry; the commit function dedups names under the
		// lock (against admitted apps and within the group).
		for i, spec := range req.Apps {
			verdicts[i].Name = spec.Name
			app, berr := scenario.BuildApp(spec, s.net)
			if berr != nil {
				verdicts[i].Error = berr.Error()
				continue
			}
			apps = append(apps, app)
			appIdx = append(appIdx, i)
		}
		results, err = s.group.SubmitMany(apps, root)
		defer s.lockWithSpan(root)() // appView below reads live placements
	} else {
		defer s.lockWithSpan(root)()
		taken := map[string]bool{}
		for i, spec := range req.Apps {
			verdicts[i].Name = spec.Name
			app, berr := scenario.BuildApp(spec, s.net)
			switch {
			case berr != nil:
				verdicts[i].Error = berr.Error()
			case taken[app.Name] || s.sched.HasApp(app.Name):
				verdicts[i].Error = fmt.Sprintf("application %q already admitted", app.Name)
			default:
				taken[app.Name] = true
				apps = append(apps, app)
				appIdx = append(appIdx, i)
			}
		}
		results, err = s.sched.SubmitBatch(apps)
	}
	for j, res := range results {
		v := &verdicts[appIdx[j]]
		if res.Err != nil {
			v.Error = res.Err.Error()
		} else {
			v.Admitted = true
			view := s.appView(res.App)
			v.App = &view
		}
	}
	resp := batchResponse{Verdicts: verdicts}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		if errors.Is(err, core.ErrDurability) {
			status = http.StatusInternalServerError
		} else {
			status = http.StatusConflict
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardRemove(w, r)
		return
	}
	name := r.PathValue("name")
	root := s.spans.Start("http.remove")
	defer root.End()
	root.SetAttr("app", name)
	var err error
	if s.group != nil {
		// With group commit on, removes ride the same queue as
		// admissions: the operation serializes behind in-flight groups
		// and takes the scheduler lock exactly once, through the same
		// path — no second lock discipline on the side.
		_, err = s.group.Exec(func(sp *obs.Span) ([]core.BatchResult, error) {
			defer s.lockWithSpan(sp)()
			return nil, s.sched.Remove(name)
		}, root)
	} else {
		unlock := s.lockWithSpan(root)
		err = s.sched.Remove(name)
		unlock()
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardRepair(w, r)
		return
	}
	name := r.PathValue("name")
	root := s.spans.Start("http.repair")
	defer root.End()
	root.SetAttr("app", name)
	var pa *core.PlacedApp
	var err error
	if s.group != nil {
		// Same uniform lock path as removes: one queue entry, one lock
		// acquisition, ordered against concurrent admission groups.
		var results []core.BatchResult
		results, err = s.group.Exec(func(sp *obs.Span) ([]core.BatchResult, error) {
			defer s.lockWithSpan(sp)()
			re, rerr := s.sched.Repair(name)
			if rerr != nil {
				return nil, rerr
			}
			return []core.BatchResult{{Name: name, App: re}}, nil
		}, root)
		if err == nil && len(results) == 1 {
			pa = results[0].App
		}
	} else {
		unlock := s.lockWithSpan(root)
		pa, err = s.sched.Repair(name)
		unlock()
	}
	if err != nil {
		var status int
		switch {
		case errors.Is(err, core.ErrRejected):
			status = http.StatusConflict
		case errors.Is(err, core.ErrNotFound):
			status = http.StatusNotFound
		default:
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	view := s.appView(pa)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// fluctuationRequest scales element capacities; keys are "ncp:<name>" or
// "link:<name>".
type fluctuationRequest struct {
	Scale map[string]float64 `json:"scale"`
}

type fluctuationResponse struct {
	ViolatedGR []string           `json:"violatedGR"`
	BERates    map[string]float64 `json:"beRates"`
}

func (s *Server) handleFluctuation(w http.ResponseWriter, r *http.Request) {
	if s.rt() != nil {
		s.shardFluctuation(w, r)
		return
	}
	root := s.spans.Start("http.fluctuation")
	defer root.End()
	dsp := root.Child("http.decode")
	var req fluctuationRequest
	err := decodeStrict(r.Body, &req)
	dsp.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode fluctuation: %v", err)})
		return
	}
	defer s.lockWithSpan(root)()
	scale := core.ElementScale{}
	for key, factor := range req.Scale {
		elem, err := s.parseElement(key)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		scale[elem] = factor
	}
	rep, err := s.sched.ApplyFluctuation(scale)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrDurability) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	resp := fluctuationResponse{ViolatedGR: rep.ViolatedGR, BERates: rep.BERates}
	if resp.ViolatedGR == nil {
		resp.ViolatedGR = []string{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) parseElement(key string) (placement.Element, error) {
	switch {
	case strings.HasPrefix(key, "ncp:"):
		name := strings.TrimPrefix(key, "ncp:")
		id, ok := s.net.NCPIDByName(name)
		if !ok {
			return 0, fmt.Errorf("unknown NCP %q", name)
		}
		return placement.NCPElement(id), nil
	case strings.HasPrefix(key, "link:"):
		name := strings.TrimPrefix(key, "link:")
		for l := 0; l < s.net.NumLinks(); l++ {
			if s.net.Link(network.LinkID(l)).Name == name {
				return placement.LinkElement(s.net, network.LinkID(l)), nil
			}
		}
		return 0, fmt.Errorf("unknown link %q", name)
	default:
		return 0, fmt.Errorf("element key %q must start with ncp: or link:", key)
	}
}

// decodeBufs pools request-body scratch: under load every admission
// used to grow a fresh decoder buffer to body size; recycling the
// buffer keeps request decode allocation flat regardless of body size.
var decodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decodeStrict decodes one JSON value from body into v, rejecting
// unknown fields, through a pooled read buffer.
func decodeStrict(body io.Reader, v any) error {
	buf := decodeBufs.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		decodeBufs.Put(buf)
	}()
	if _, err := buf.ReadFrom(body); err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// SubmitAll admits a batch of applications (e.g. a scenario's app list at
// server startup) through the same atomic batch path as POST /apps/batch:
// one allocation solve and one journal record cover the whole load,
// logging each outcome to out. Rejections are reported but do not fail the
// batch; a batch-level error (allocation or durability failure) aborts.
func (s *Server) SubmitAll(apps []core.App, out io.Writer) error {
	var results []core.BatchResult
	var err error
	if rt := s.rt(); rt != nil {
		results, err = rt.SubmitBatch(apps, nil)
	} else {
		s.mu.Lock()
		defer s.mu.Unlock()
		results, err = s.sched.SubmitBatch(apps)
	}
	for _, res := range results {
		switch {
		case errors.Is(res.Err, core.ErrRejected):
			fmt.Fprintf(out, "rejected %q: %v\n", res.Name, res.Err)
		case res.Err != nil:
			fmt.Fprintf(out, "failed %q: %v\n", res.Name, res.Err)
		default:
			fmt.Fprintf(out, "admitted %q at %.4f/s\n", res.Name, res.App.TotalRate())
		}
	}
	if err != nil {
		return fmt.Errorf("batch submit: %w", err)
	}
	return nil
}
