package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sparcle/internal/network"
	"sparcle/internal/resource"
)

// testServer builds a server over a small two-branch network.
func testServer(t *testing.T) (*httptest.Server, *network.Network) {
	t.Helper()
	b := network.NewBuilder("test")
	src := b.AddNCP("src", nil, 0)
	m1 := b.AddNCP("m1", resource.Vector{resource.CPU: 100}, 0)
	m2 := b.AddNCP("m2", resource.Vector{resource.CPU: 80}, 0)
	snk := b.AddNCP("snk", nil, 0)
	b.AddLink("s1", src, m1, 1e6, 0)
	b.AddLink("s2", src, m2, 1e6, 0)
	b.AddLink("k1", m1, snk, 1e6, 0)
	b.AddLink("k2", m2, snk, 1e6, 0)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(net).Handler())
	t.Cleanup(ts.Close)
	return ts, net
}

// appJSON is a submittable pipeline spec.
func appJSON(name, class string, extra string) string {
	qos := fmt.Sprintf(`{"class": %q%s}`, class, extra)
	return fmt.Sprintf(`{
		"name": %q,
		"cts": [
			{"name": "in", "host": "src"},
			{"name": "work", "req": {"cpu": 10}},
			{"name": "out", "host": "snk"}
		],
		"tts": [
			{"from": "in", "to": "work", "bits": 1},
			{"from": "work", "to": "out", "bits": 1}
		],
		"qos": %s
	}`, name, qos)
}

func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, body := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestNetworkEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	resp, body := do(t, http.MethodGet, ts.URL+"/network", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var view networkView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.NCPs) != 4 || len(view.Links) != 4 {
		t.Fatalf("view = %+v", view)
	}
	if view.NCPs[1].Capacity["cpu"] != 100 {
		t.Fatalf("capacity lost: %+v", view.NCPs[1])
	}
}

func TestSubmitListRemoveLifecycle(t *testing.T) {
	ts, _ := testServer(t)

	resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON("pipe", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var created appView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.TotalRate <= 0 || len(created.Paths) == 0 {
		t.Fatalf("created = %+v", created)
	}
	if created.Paths[0].Hosts["in"] != "src" {
		t.Fatalf("pin lost: %+v", created.Paths[0].Hosts)
	}

	// Duplicate names are rejected.
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps", appJSON("pipe", "best-effort", ""))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit: %d", resp.StatusCode)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/apps", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var apps []appView
	if err := json.Unmarshal(body, &apps); err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || apps[0].Name != "pipe" || apps[0].Class != "best-effort" {
		t.Fatalf("apps = %+v", apps)
	}

	resp, _ = do(t, http.MethodDelete, ts.URL+"/apps/pipe", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/apps/pipe", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double remove: %d", resp.StatusCode)
	}
}

func TestSubmitRejection(t *testing.T) {
	ts, _ := testServer(t)
	resp, body := do(t, http.MethodPost, ts.URL+"/apps",
		appJSON("big", "guaranteed-rate", `, "minRate": 1e9, "minRateAvailability": 0.9`))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("oversized GR: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "rejected") {
		t.Fatalf("body = %s", body)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := testServer(t)
	resp, _ := do(t, http.MethodPost, ts.URL+"/apps", `{invalid`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps", `{"name": "x", "cts": [{"name": "a", "host": "nope"}], "qos": {"class": "be"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad host: %d", resp.StatusCode)
	}
}

func TestFluctuationAndRepair(t *testing.T) {
	ts, _ := testServer(t)
	resp, _ := do(t, http.MethodPost, ts.URL+"/apps",
		appJSON("g", "guaranteed-rate", `, "minRate": 5, "minRateAvailability": 0.9, "maxPaths": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit GR: %d", resp.StatusCode)
	}

	// Kill m1 (where the app landed): the fluctuation reports it.
	resp, body := do(t, http.MethodPost, ts.URL+"/fluctuation", `{"scale": {"ncp:m1": 0}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fluctuation: %d %s", resp.StatusCode, body)
	}
	var rep fluctuationResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.ViolatedGR) != 1 || rep.ViolatedGR[0] != "g" {
		t.Fatalf("violations = %+v", rep)
	}

	// Repair moves it to m2.
	resp, body = do(t, http.MethodPost, ts.URL+"/apps/g/repair", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %d %s", resp.StatusCode, body)
	}
	var repaired appView
	if err := json.Unmarshal(body, &repaired); err != nil {
		t.Fatal(err)
	}
	if repaired.Paths[0].Hosts["work"] != "m2" {
		t.Fatalf("repaired hosts = %+v", repaired.Paths[0].Hosts)
	}

	// Repairing an unknown app 404s.
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps/nope/repair", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown repair: %d", resp.StatusCode)
	}
}

func TestFluctuationValidation(t *testing.T) {
	ts, _ := testServer(t)
	for _, body := range []string{
		`{invalid`,
		`{"scale": {"bogus-key": 0.5}}`,
		`{"scale": {"ncp:unknown": 0.5}}`,
		`{"scale": {"link:unknown": 0.5}}`,
		`{"scale": {"ncp:m1": -1}}`,
	} {
		resp, _ := do(t, http.MethodPost, ts.URL+"/fluctuation", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d", body, resp.StatusCode)
		}
	}
	// Link keys resolve.
	resp, _ := do(t, http.MethodPost, ts.URL+"/fluctuation", `{"scale": {"link:s1": 0.5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("link fluctuation: %d", resp.StatusCode)
	}
}

// TestConcurrentRequests hammers the API from many goroutines; run with
// -race this verifies the serialization around the (not thread-safe)
// scheduler.
func TestConcurrentRequests(t *testing.T) {
	ts, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("app-%d", i)
			resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON(name, "best-effort", ""))
			if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
				errs <- fmt.Sprintf("submit %s: %d %s", name, resp.StatusCode, body)
				return
			}
			if resp, _ := do(t, http.MethodGet, ts.URL+"/apps", ""); resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("list after %s: %d", name, resp.StatusCode)
				return
			}
			if resp.StatusCode == http.StatusCreated {
				do(t, http.MethodDelete, ts.URL+"/apps/"+name, "")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPanicRecoveryMiddleware pins that a panicking handler answers 500
// with a JSON error, increments sparcle_http_panics_total, and leaves the
// server able to serve the next request.
func TestPanicRecoveryMiddleware(t *testing.T) {
	b := network.NewBuilder("t")
	b.AddNCP("a", nil, 0)
	netw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(netw)
	calls := 0
	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom: secret internals")
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if strings.Contains(body.Error, "secret") {
		t.Fatalf("panic value leaked to the client: %q", body.Error)
	}

	// The server survives: the next request succeeds.
	resp2, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("post-panic status = %d, want 204", resp2.StatusCode)
	}

	snap := s.Metrics().Snapshot()
	fam := snap["sparcle_http_panics_total"]
	if len(fam.Series) != 1 || *fam.Series[0].Value != 1 {
		t.Fatalf("sparcle_http_panics_total = %+v, want a single series at 1", fam)
	}
}

// TestPanicRecoveryPreservesAbort pins that http.ErrAbortHandler keeps its
// contract: the middleware re-panics instead of answering 500.
func TestPanicRecoveryPreservesAbort(t *testing.T) {
	b := network.NewBuilder("t")
	b.AddNCP("a", nil, 0)
	netw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(netw)
	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	if _, err := http.Get(ts.URL + "/"); err == nil {
		t.Fatal("aborted handler must surface as a transport error, not a response")
	}
	if fam := s.Metrics().Snapshot()["sparcle_http_panics_total"]; len(fam.Series) != 0 {
		t.Fatalf("abort counted as panic: %+v", fam)
	}
}
