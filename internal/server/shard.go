package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/network"
	"sparcle/internal/obs"
	"sparcle/internal/scenario"
	"sparcle/internal/shard"
)

// Shard mode. NewSharded fronts the HTTP API with a region-sharded
// admission router (internal/shard) instead of one scheduler: the
// network is edge-cut into regions, each region runs its own scheduler
// and warm allocation solver behind its own lock, and cross-region
// applications are admitted against border-link capacity leases. The
// server's global mu no longer serializes admissions — intra-region
// requests to different shards run concurrently, so the lock.wait spans
// an open-loop load harness induces shrink with the shard count.

// NewSharded returns a Server routing through a region-sharded
// admission router over shards regions. shards must be at least 2: a
// single-shard deployment is exactly New (the router's one-shard path
// is the seed scheduler verbatim, so there is nothing to gain).
func NewSharded(netw *network.Network, shards int, opts ...core.Option) (*Server, error) {
	if shards < 2 {
		return nil, fmt.Errorf("server: NewSharded needs at least 2 shards, got %d (use New)", shards)
	}
	reg := obs.NewRegistry()
	opts = append([]core.Option{core.WithMetrics(reg)}, opts...)
	router, err := shard.New(netw, shards, func(sub *network.Network, region int) core.Control {
		return core.New(sub, opts...)
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		net:     netw,
		metrics: reg,
		opts:    opts,
		shards:  shards,
	}
	s.router.Store(router)
	s.start = time.Now()
	s.metricsHelp()
	return s, nil
}

// Router returns the admission router, nil unless the server was built
// with NewSharded. Tests use it to reach individual shards.
func (s *Server) Router() *shard.Router { return s.rt() }

func (s *Server) metricsHelp() {
	s.metrics.SetHelp("sparcle_shard_apps", "Admitted applications per shard and class.")
	s.metrics.SetHelp("sparcle_shard_solver_flows", "Warm BE solver rows (flows) per shard.")
	s.metrics.SetHelp("sparcle_border_leases", "Granted border-link capacity leases.")
	s.metrics.SetHelp("sparcle_border_leased_bandwidth", "Leased bandwidth per border link.")
	s.metrics.SetHelp("sparcle_border_utilization", "Leased fraction of each border link's scaled capacity.")
}

// updateShardMetrics refreshes the sparcle_shard_* and sparcle_border_*
// gauges from the router; /metrics calls it on every scrape so the
// series are exact at observation time rather than maintained inline on
// the admission path.
func (s *Server) updateShardMetrics() {
	st := s.rt().Stats()
	for _, sh := range st.Shards {
		l := obs.L("shard", strconv.Itoa(sh.Region))
		s.metrics.Gauge("sparcle_shard_apps", l, obs.L("class", core.GuaranteedRate.String())).Set(float64(sh.GRApps))
		s.metrics.Gauge("sparcle_shard_apps", l, obs.L("class", core.BestEffort.String())).Set(float64(sh.BEApps))
		s.metrics.Gauge("sparcle_shard_solver_flows", l).Set(float64(sh.SolverFlows))
	}
	s.metrics.Gauge("sparcle_border_leases").Set(float64(st.Leases))
	for _, b := range st.Border {
		l := obs.L("link", b.Link)
		s.metrics.Gauge("sparcle_border_leased_bandwidth", l).Set(b.Leased)
		s.metrics.Gauge("sparcle_border_utilization", l).Set(b.Utilization)
	}
}

// shardAppView is appView plus shard-mode placement detail.
type shardAppView struct {
	appView
	Shard int        `json:"shard"`
	Cross *crossView `json:"cross,omitempty"`
}

// crossView describes a cross-region placement: the two regions, the
// leased border link, and each half's region-local placement.
type crossView struct {
	Regions    [2]int     `json:"regions"`
	BorderLink string     `json:"borderLink"`
	Bits       float64    `json:"bits"`
	Rate       float64    `json:"rate"`
	Halves     [2]appView `json:"halves"`
}

// shardView renders an admission Result.
func (s *Server) shardView(rt *shard.Router, res *shard.Result) shardAppView {
	if res.Cross == nil {
		return shardAppView{
			appView: appViewOn(rt.Region(res.Shard).View.Net, res.App),
			Shard:   res.Shard,
		}
	}
	c := res.Cross
	return shardAppView{
		appView: appView{
			Name:         res.App.App.Name,
			Class:        res.App.App.QoS.Class.String(),
			TotalRate:    c.Rate,
			Availability: c.Availability,
		},
		Shard: res.Shard,
		Cross: &crossView{
			Regions:    [2]int{c.A, c.B},
			BorderLink: c.BorderLink,
			Bits:       c.Bits,
			Rate:       c.Rate,
			Halves: [2]appView{
				appViewOn(rt.Region(c.A).View.Net, c.HalfA),
				appViewOn(rt.Region(c.B).View.Net, c.HalfB),
			},
		},
	}
}

func shardErrStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrRejected):
		return http.StatusConflict
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) shardListApps(w http.ResponseWriter, r *http.Request) {
	apps := []shardAppView{}
	rt := s.rt()
	for i, shardApps := range rt.AppsByShard(nil) {
		netw := rt.Region(i).View.Net
		for _, pa := range shardApps {
			apps = append(apps, shardAppView{appView: appViewOn(netw, pa), Shard: i})
		}
	}
	writeJSON(w, http.StatusOK, apps)
}

func (s *Server) shardSubmit(w http.ResponseWriter, r *http.Request) {
	root := s.spans.Start("http.submit")
	defer root.End()
	dsp := root.Child("http.decode")
	var spec scenario.AppSpec
	err := decodeStrict(r.Body, &spec)
	dsp.End()
	if err != nil {
		root.SetAttr("outcome", "bad-request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode app spec: %v", err)})
		return
	}
	root.SetAttr("app", spec.Name)
	bsp := root.Child("http.build")
	app, err := scenario.BuildApp(spec, s.net)
	bsp.End()
	if err != nil {
		root.SetAttr("outcome", "bad-request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// No global lock: the router claims the name and locks only the
	// shards the app touches. Duplicate names come back as ErrRejected.
	rt := s.rt()
	res, err := rt.Submit(app, root)
	if err != nil {
		root.SetAttr("outcome", "rejected")
		writeJSON(w, shardErrStatus(err), errorResponse{Error: err.Error()})
		return
	}
	root.SetAttr("outcome", "admitted")
	root.SetInt("shard", int64(res.Shard))
	writeJSON(w, http.StatusCreated, s.shardView(rt, res))
}

// shardSubmitBatch mirrors handleSubmitBatch with one semantic
// difference, documented in docs/http-api.md: atomicity is per shard.
// Each shard's intra-region members form that shard's atomic sub-batch;
// cross-region members are admitted individually.
func (s *Server) shardSubmitBatch(w http.ResponseWriter, r *http.Request) {
	root := s.spans.Start("http.batch")
	defer root.End()
	dsp := root.Child("http.decode")
	var req batchRequest
	err := decodeStrict(r.Body, &req)
	dsp.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode batch: %v", err)})
		return
	}
	root.SetInt("apps", int64(len(req.Apps)))

	verdicts := make([]batchVerdict, len(req.Apps))
	var apps []core.App
	var appIdx []int
	for i, spec := range req.Apps {
		verdicts[i].Name = spec.Name
		app, err := scenario.BuildApp(spec, s.net)
		if err != nil {
			verdicts[i].Error = err.Error()
			continue
		}
		apps = append(apps, app)
		appIdx = append(appIdx, i)
	}
	rt := s.rt()
	results, err := rt.SubmitBatch(apps, root)
	for j, res := range results {
		v := &verdicts[appIdx[j]]
		if res.Err != nil {
			v.Error = res.Err.Error()
			continue
		}
		v.Admitted = true
		view := s.batchAppView(rt, res.App)
		v.App = &view
	}
	resp := batchResponse{Verdicts: verdicts}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		if errors.Is(err, core.ErrDurability) {
			status = http.StatusInternalServerError
		} else {
			status = http.StatusConflict
		}
	}
	writeJSON(w, status, resp)
}

// batchAppView renders a batch result's placement. The batch path
// reports intra apps with their shard's placement and cross apps as the
// logical view (paths live region-locally in the halves); either way
// the placement's own network is found through the router's registry.
func (s *Server) batchAppView(rt *shard.Router, pa *core.PlacedApp) appView {
	if len(pa.Paths) == 0 {
		// Logical cross-region view: no region-local paths to render.
		return appView{
			Name:         pa.App.Name,
			Class:        pa.App.QoS.Class.String(),
			TotalRate:    pa.TotalRate(),
			Availability: pa.Availability,
		}
	}
	netw := s.net
	if i, ok := rt.ShardOf(pa.App.Name); ok {
		netw = rt.Region(i).View.Net
	}
	return appViewOn(netw, pa)
}

func (s *Server) shardRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	root := s.spans.Start("http.remove")
	defer root.End()
	root.SetAttr("app", name)
	if err := s.rt().Remove(name, root); err != nil {
		writeJSON(w, shardErrStatus(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) shardRepair(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	root := s.spans.Start("http.repair")
	defer root.End()
	root.SetAttr("app", name)
	rt := s.rt()
	res, err := rt.Repair(name, root)
	if err != nil {
		writeJSON(w, shardErrStatus(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.shardView(rt, res))
}

func (s *Server) shardFluctuation(w http.ResponseWriter, r *http.Request) {
	root := s.spans.Start("http.fluctuation")
	defer root.End()
	dsp := root.Child("http.decode")
	var req fluctuationRequest
	err := decodeStrict(r.Body, &req)
	dsp.End()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode fluctuation: %v", err)})
		return
	}
	// Elements are named against the parent network; the router splits
	// the scale into per-region and border-link shares.
	scale := core.ElementScale{}
	for key, factor := range req.Scale {
		elem, err := s.parseElement(key)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		scale[elem] = factor
	}
	rep, err := s.rt().ApplyFluctuation(scale, root)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrDurability) {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	resp := fluctuationResponse{ViolatedGR: rep.ViolatedGR, BERates: rep.BERates}
	if resp.ViolatedGR == nil {
		resp.ViolatedGR = []string{}
	}
	writeJSON(w, http.StatusOK, resp)
}
