package server

import (
	"encoding/json"
	"fmt"
	"time"

	"sparcle/internal/core"
	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/shard"
)

// Shard-mode durability. The journal stores opaque JSON, so the sharded
// control plane reuses it unchanged: records are shard.Envelope (a
// scheduler record tagged with its shard, or a router-level lease /
// border-scale mutation) and snapshots are shard.RouterSnapshot (one
// scheduler snapshot per region plus the border state). Recovery
// demultiplexes the envelope stream through shard.Rebuild, which also
// reconciles cross-region operations a crash tore mid-way.

// enableShardJournal is EnableJournal for a NewSharded server.
func (s *Server) enableShardJournal(dir string, opt journal.Options, snapshotEvery int) error {
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	start := time.Now()

	if opt.Metrics == nil {
		opt.Metrics = s.metrics
	}
	j, err := journal.Open(dir, opt)
	if err != nil {
		return fmt.Errorf("open journal: %w", err)
	}
	snapBytes, recs, err := j.Recover()
	if err != nil {
		j.Close()
		return fmt.Errorf("recover journal: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if snapBytes == nil && len(recs) == 0 {
		// Fresh journal: pin the initial state of every shard (seeds
		// included) before the first operation can be acknowledged.
		if err := s.rt().SnapshotWith(func(snap *shard.RouterSnapshot) error {
			return j.WriteSnapshot(snap)
		}); err != nil {
			j.Close()
			return fmt.Errorf("write genesis snapshot: %w", err)
		}
	} else {
		var snap *shard.RouterSnapshot
		if snapBytes != nil {
			snap = &shard.RouterSnapshot{}
			if err := json.Unmarshal(snapBytes, snap); err != nil {
				j.Close()
				return fmt.Errorf("decode snapshot: %w", err)
			}
		}
		envs := make([]*shard.Envelope, len(recs))
		for i := range recs {
			envs[i] = &shard.Envelope{}
			if err := json.Unmarshal(recs[i].Data, envs[i]); err != nil {
				j.Close()
				return fmt.Errorf("decode record %d: %w", recs[i].Seq, err)
			}
		}
		rebuilt, err := shard.Rebuild(s.net, s.shards, snap, envs,
			func(sub *network.Network, region int, ss *core.Snapshot, rs []*core.Record) (core.Control, error) {
				return core.Rebuild(sub, ss, rs, s.opts...)
			})
		if err != nil {
			j.Close()
			return fmt.Errorf("rebuild sharded scheduler: %w", err)
		}
		if s.spans != nil {
			rebuilt.SetSpans(s.spans)
		}
		s.router.Store(rebuilt)
	}

	s.journal = j
	// The hook runs under the committing shard's lock (or the border
	// mutex for lease envelopes); the journal serializes concurrent
	// appends internally. Snapshots cannot be cut here — the router's
	// consistent export takes every shard lock, including the one the
	// committing operation holds — so the hook only flags the cadence
	// and a background goroutine writes the snapshot via SnapshotWith,
	// which holds all locks across export AND write so no record can
	// land in between and be skipped by a later replay.
	s.rt().SetEnvelopeHook(func(env *shard.Envelope) error {
		if _, err := j.Append("op", env); err != nil {
			return err
		}
		if snapshotEvery > 0 && j.SinceSnapshot() >= snapshotEvery &&
			s.snapshotting.CompareAndSwap(false, true) {
			go s.writeShardSnapshot(j)
		}
		return nil
	})

	s.metrics.SetHelp(metricRecovery, "Duration of the last journal recovery in seconds.")
	s.metrics.Gauge(metricRecovery).Set(time.Since(start).Seconds())
	return nil
}

// writeShardSnapshot cuts one consistent router snapshot into the
// journal. Failures are counted, not fatal: the journal still holds
// every record, so recovery just replays a longer tail.
func (s *Server) writeShardSnapshot(j *journal.Journal) {
	defer s.snapshotting.Store(false)
	err := s.rt().SnapshotWith(func(snap *shard.RouterSnapshot) error {
		return j.WriteSnapshot(snap)
	})
	if err != nil {
		s.metrics.Counter("sparcle_snapshot_errors_total").Inc()
	}
}
