package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/resource"
)

// shardTestNet is a dumbbell: region {a0,a1} and region {b0,b1} joined
// by one bridge link.
func shardTestNet(t *testing.T) *network.Network {
	t.Helper()
	b := network.NewBuilder("dumbbell")
	caps := resource.Vector{resource.CPU: 1000}
	a0 := b.AddNCP("a0", caps, 0.01)
	a1 := b.AddNCP("a1", caps, 0.01)
	b0 := b.AddNCP("b0", caps, 0.01)
	b1 := b.AddNCP("b1", caps, 0.01)
	b.AddLink("la", a0, a1, 1e6, 0.01)
	b.AddLink("bridge", a1, b0, 1000, 0.02)
	b.AddLink("lb", b0, b1, 1e6, 0.01)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func shardTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := NewSharded(shardTestNet(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// shardAppJSON pins a pipeline from one NCP to another.
func shardAppJSON(name, from, to, qos string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"cts": [
			{"name": "in", "host": %q},
			{"name": "work", "req": {"cpu": 1}},
			{"name": "out", "host": %q}
		],
		"tts": [
			{"from": "in", "to": "work", "bits": 2},
			{"from": "work", "to": "out", "bits": 2}
		],
		"qos": %s
	}`, name, from, to, qos)
}

const shardGRQoS = `{"class": "guaranteed-rate", "minRate": 1, "minRateAvailability": 0.5, "maxPaths": 1}`
const shardBEQoS = `{"class": "best-effort", "priority": 1, "maxPaths": 1}`

func TestShardServerIntraAndCross(t *testing.T) {
	ts, _ := shardTestServer(t)

	// Intra-region app lands in one shard with a real placement.
	resp, body := do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("inA", "a0", "a1", shardGRQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("inA: %d %s", resp.StatusCode, body)
	}
	var intra struct {
		Shard int             `json:"shard"`
		Cross json.RawMessage `json:"cross"`
		Paths []any           `json:"paths"`
	}
	if err := json.Unmarshal(body, &intra); err != nil {
		t.Fatal(err)
	}
	if intra.Cross != nil || len(intra.Paths) == 0 {
		t.Fatalf("intra app response: %s", body)
	}

	// Cross-region app reports the lease.
	resp, body = do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("xr", "a0", "b1", shardGRQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("xr: %d %s", resp.StatusCode, body)
	}
	var cross struct {
		TotalRate float64 `json:"totalRate"`
		Cross     *struct {
			BorderLink string  `json:"borderLink"`
			Rate       float64 `json:"rate"`
		} `json:"cross"`
	}
	if err := json.Unmarshal(body, &cross); err != nil {
		t.Fatal(err)
	}
	if cross.Cross == nil || cross.Cross.BorderLink != "bridge" || cross.TotalRate <= 0 {
		t.Fatalf("cross app response: %s", body)
	}

	// Duplicate logical names conflict across shards.
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("inA", "b0", "b1", shardBEQoS))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate name: %d", resp.StatusCode)
	}

	// /healthz carries the sharding section.
	resp, body = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz struct {
		Sharding *struct {
			Shards []struct {
				Admitted int `json:"admitted"`
			} `json:"shards"`
			Leases int `json:"leases"`
			Border []struct {
				Link        string  `json:"link"`
				Utilization float64 `json:"utilization"`
			} `json:"border"`
		} `json:"sharding"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Sharding == nil || len(hz.Sharding.Shards) != 2 {
		t.Fatalf("healthz sharding: %s", body)
	}
	if hz.Sharding.Leases != 1 {
		t.Fatalf("healthz leases = %d", hz.Sharding.Leases)
	}
	admitted := 0
	for _, sh := range hz.Sharding.Shards {
		admitted += sh.Admitted
	}
	if admitted != 3 { // inA + two halves of xr
		t.Fatalf("healthz admitted = %d, body %s", admitted, body)
	}
	if len(hz.Sharding.Border) != 1 || hz.Sharding.Border[0].Utilization <= 0 {
		t.Fatalf("healthz border: %s", body)
	}

	// /metrics exposes the per-shard and border series.
	resp, body = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"sparcle_shard_apps{", "sparcle_border_leases", "sparcle_border_utilization{"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// /apps lists shard-tagged placements (cross halves included).
	resp, body = do(t, http.MethodGet, ts.URL+"/apps", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apps: %d", resp.StatusCode)
	}
	var apps []struct {
		Name  string `json:"name"`
		Shard int    `json:"shard"`
	}
	if err := json.Unmarshal(body, &apps); err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("apps listed: %s", body)
	}

	// Remove by logical name releases the lease.
	resp, _ = do(t, http.MethodDelete, ts.URL+"/apps/xr", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove xr: %d", resp.StatusCode)
	}
	_, body = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Sharding.Leases != 0 {
		t.Fatalf("lease survived removal: %s", body)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/apps/xr", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double remove: %d", resp.StatusCode)
	}
}

func TestShardServerBatchAndFluctuation(t *testing.T) {
	ts, _ := shardTestServer(t)
	batch := fmt.Sprintf(`{"apps": [%s, %s, %s]}`,
		shardAppJSON("b1", "a0", "a1", shardGRQoS),
		shardAppJSON("b2", "b0", "b1", shardBEQoS),
		shardAppJSON("b3", "a0", "b1", shardGRQoS))
	resp, body := do(t, http.MethodPost, ts.URL+"/apps/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br struct {
		Verdicts []struct {
			Name     string `json:"name"`
			Admitted bool   `json:"admitted"`
			Error    string `json:"error"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != 3 {
		t.Fatalf("verdicts: %s", body)
	}
	for _, v := range br.Verdicts {
		if !v.Admitted {
			t.Fatalf("batch member %s rejected: %s", v.Name, v.Error)
		}
	}

	// Degrading the bridge below the leased bandwidth flags the cross app.
	resp, body = do(t, http.MethodPost, ts.URL+"/fluctuation",
		`{"scale": {"link:bridge": 0.001}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fluctuation: %d %s", resp.StatusCode, body)
	}
	var fr struct {
		ViolatedGR []string `json:"violatedGR"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	violated := false
	for _, name := range fr.ViolatedGR {
		if name == "b3" {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("bridge squeeze did not flag b3: %s", body)
	}
}

// TestShardServerJournalRecovery: a sharded server with a journal
// recovers its full state — shard placements, cross registry, leases —
// on restart.
func TestShardServerJournalRecovery(t *testing.T) {
	net := shardTestNet(t)
	dir := t.TempDir()

	srv, err := NewSharded(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	resp, body := do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("xr", "a0", "b1", shardGRQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("xr: %d %s", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/apps", shardAppJSON("inB", "b0", "b1", shardBEQoS))
	if resp.StatusCode != http.StatusCreated {
		t.Fatal("inB")
	}
	before, err := srv.Router().ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewSharded(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.EnableJournal(dir, journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Close()
	after, err := srv2.Router().ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(before)
	aj, _ := json.Marshal(after)
	if string(bj) != string(aj) {
		t.Fatalf("recovered state differs\nbefore: %s\nafter:  %s", bj, aj)
	}
	// The recovered router still serves: remove the cross app.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, _ = do(t, http.MethodDelete, ts2.URL+"/apps/xr", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove after recovery: %d", resp.StatusCode)
	}
}
