package server

import (
	"net/http"

	"sparcle/internal/core"
	"sparcle/internal/obs"
)

// This file wires end-to-end span tracing through the HTTP layer: each
// mutating request gets one root span covering JSON decode, app build,
// scheduler-lock wait and the scheduler operation itself (whose pipeline
// stages arrive as child spans via core's request-span bracket), two
// debug routes expose the flight ring and the per-stage latency
// quantiles, and handler panics dump the flight ring to disk before the
// 500 goes out.

// EnableSpans attaches a span tracer to the server: mutating requests
// then emit one span tree each, GET /debug/flight serves the recent
// traces as a Chrome trace, and GET /debug/latency serves per-stage
// p50/p99/p999 quantiles. Safe to call before or after EnableJournal —
// the option is appended to the recorded scheduler options, so the
// scheduler rebuild that journal recovery performs keeps spans armed. A
// nil tracer disables everything at zero cost.
func (s *Server) EnableSpans(st *obs.SpanTracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = st
	s.opts = append(s.opts, core.WithSpans(st))
	if rt := s.rt(); rt != nil {
		// Shard mode: the router parents per-shard lock.wait spans under
		// the request root and arms every shard scheduler's operation
		// spans; a journal rebuild re-arms through the recorded options.
		rt.SetSpans(st)
		return
	}
	s.sched.SetSpans(st)
}

// handleFlight serves the flight recorder's recent traces as one Chrome
// trace-event JSON array, loadable in chrome://tracing or Perfetto.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "span tracing disabled"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w, s.spans.Flight()); err != nil {
		// The status line is already out; all that is left is to count it.
		s.metrics.Counter("sparcle_http_flight_errors_total").Inc()
	}
}

// handleLatency serves per-stage latency statistics (count, total
// seconds, p50/p99/p999) keyed by span name, plus the SLO breach count.
// With spans disabled the stage map is empty, not an error: load
// harnesses may scrape it unconditionally.
func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		SLOBreaches uint64                    `json:"sloBreaches"`
		Stages      map[string]obs.StageStats `json:"stages"`
	}{
		SLOBreaches: s.spans.Breaches(),
		Stages:      s.spans.Stages(),
	})
}

// lockWithSpan acquires the scheduler lock under a "lock.wait" child of
// root — the queueing delay an open-loop load harness induces shows up
// here — and installs root as the scheduler's request span so operation
// spans nest under it. The caller must run the returned unlock (usually
// deferred), which clears the bracket before releasing the lock. With
// spans disabled (nil root) this is exactly Lock/Unlock.
func (s *Server) lockWithSpan(root *obs.Span) (unlock func()) {
	lsp := root.Child("lock.wait")
	s.mu.Lock()
	lsp.End()
	s.sched.SetRequestSpan(root)
	return func() {
		s.sched.SetRequestSpan(nil)
		s.mu.Unlock()
	}
}
