package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparcle/internal/journal"
	"sparcle/internal/network"
	"sparcle/internal/obs"
	"sparcle/internal/resource"
)

// spanServer builds a journaled server with span tracing armed, returning
// the test server, the tracer and the JSONL sink.
func spanServer(t *testing.T) (*httptest.Server, *obs.SpanTracer, *bytes.Buffer) {
	t.Helper()
	b := network.NewBuilder("test")
	src := b.AddNCP("src", nil, 0)
	m1 := b.AddNCP("m1", resource.Vector{resource.CPU: 100}, 0)
	m2 := b.AddNCP("m2", resource.Vector{resource.CPU: 80}, 0)
	snk := b.AddNCP("snk", nil, 0)
	b.AddLink("s1", src, m1, 1e6, 0)
	b.AddLink("s2", src, m2, 1e6, 0)
	b.AddLink("k1", m1, snk, 1e6, 0)
	b.AddLink("k2", m2, snk, 1e6, 0)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(net)
	var jsonl bytes.Buffer
	st := obs.NewSpanTracer(obs.SpanOptions{JSONL: &jsonl, Metrics: srv.Metrics()})
	srv.EnableSpans(st)
	if err := srv.EnableJournal(t.TempDir(), journal.Options{Fsync: journal.SyncAlways}, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return ts, st, &jsonl
}

// TestSubmitSpanTree is the acceptance check of the span layer: one
// admission through the HTTP API produces a single trace whose tree runs
// decode -> lock wait -> scheduler submit -> placement -> allocation
// solve -> journal append -> journal fsync, all correctly parented.
func TestSubmitSpanTree(t *testing.T) {
	ts, st, jsonl := spanServer(t)
	resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON("pipe", "best-effort", `, "priority": 1`))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	byName := map[string]obs.SpanRecord{}
	var trace uint64
	decoder := json.NewDecoder(jsonl)
	for decoder.More() {
		var r obs.SpanRecord
		if err := decoder.Decode(&r); err != nil {
			t.Fatalf("decode span: %v", err)
		}
		if trace == 0 {
			trace = r.Trace
		}
		if r.Trace != trace {
			t.Fatalf("span %q escaped into trace %d (want %d)", r.Name, r.Trace, trace)
		}
		byName[r.Name] = r
	}

	// The admission path, bottom-up: every stage must be present and
	// parented under the stage that invoked it.
	for child, parent := range map[string]string{
		"http.decode":    "http.submit",
		"lock.wait":      "http.submit",
		"http.build":     "http.submit",
		"core.submit":    "http.submit",
		"alloc.predict":  "core.submit",
		"assign.path":    "core.submit",
		"assign.rank":    "assign.path",
		"assign.place":   "assign.path",
		"avail.analyze":  "core.submit",
		"alloc.solve":    "core.submit",
		"journal.append": "core.submit",
		"journal.fsync":  "journal.append",
	} {
		c, ok := byName[child]
		if !ok {
			t.Errorf("stage %q missing from trace", child)
			continue
		}
		p, ok := byName[parent]
		if !ok {
			t.Errorf("parent stage %q missing from trace", parent)
			continue
		}
		if c.Parent != p.Span {
			t.Errorf("%q parented under span %d, want %q (%d)", child, c.Parent, parent, p.Span)
		}
	}
	if root := byName["http.submit"]; root.Parent != 0 {
		t.Errorf("http.submit is not the root (parent %d)", root.Parent)
	}
	if got := byName["http.submit"].Attrs["outcome"]; got != "admitted" {
		t.Errorf("root outcome attr = %v", got)
	}
}

// TestDebugFlightAndLatency checks the flight-recorder route serves a
// parseable Chrome trace and the latency route serves per-stage
// quantiles after traffic.
func TestDebugFlightAndLatency(t *testing.T) {
	ts, _, _ := spanServer(t)
	if resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON("a", "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/debug/flight", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight: %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("flight not a chrome trace: %v\n%s", err, body)
	}
	if len(events) == 0 {
		t.Fatal("flight ring empty after an admission")
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/debug/latency", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("latency: %d", resp.StatusCode)
	}
	var lat struct {
		SLOBreaches uint64                    `json:"sloBreaches"`
		Stages      map[string]obs.StageStats `json:"stages"`
	}
	if err := json.Unmarshal(body, &lat); err != nil {
		t.Fatal(err)
	}
	sub, ok := lat.Stages["core.submit"]
	if !ok || sub.Count != 1 || sub.P50 <= 0 {
		t.Fatalf("latency stages = %+v", lat.Stages)
	}
}

// TestFlightDisabled: without EnableSpans the flight route answers 404
// and the latency route serves an empty stage map.
func TestFlightDisabled(t *testing.T) {
	ts, _ := testServer(t)
	if resp, _ := do(t, http.MethodGet, ts.URL+"/debug/flight", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flight without spans: %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/debug/latency", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"stages":{}`)) {
		t.Fatalf("latency without spans: %d %s", resp.StatusCode, body)
	}
}

// TestHealthzJournal checks the durability section of /healthz in both
// the journaled and plain configurations.
func TestHealthzJournal(t *testing.T) {
	ts, _, _ := spanServer(t)
	if resp, body := do(t, http.MethodPost, ts.URL+"/apps", appJSON("a", "best-effort", `, "priority": 1`)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	_, body := do(t, http.MethodGet, ts.URL+"/healthz", "")
	var h healthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.Journal.Enabled || h.Journal.Fsync != "always" {
		t.Fatalf("journal health = %+v", h.Journal)
	}
	if h.Journal.LastSeq < 1 || h.Journal.SinceSnapshot < 1 {
		t.Fatalf("journal progress missing: %+v", h.Journal)
	}
	if h.Journal.Recovering {
		t.Fatal("recovering after startup")
	}

	tsPlain, _ := testServer(t)
	_, body = do(t, http.MethodGet, tsPlain.URL+"/healthz", "")
	var hp healthzResponse
	if err := json.Unmarshal(body, &hp); err != nil {
		t.Fatal(err)
	}
	if hp.Journal.Enabled || hp.Journal.Fsync != "" {
		t.Fatalf("plain server reports a journal: %+v", hp.Journal)
	}
}
