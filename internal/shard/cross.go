package shard

import (
	"fmt"
	"sort"
	"strings"

	"sparcle/internal/core"
	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/taskgraph"
)

// This file classifies submitted applications against the partition and
// decomposes cross-region applications into two per-region halves joined
// by zero-requirement gateway CTs pinned at a border link's endpoints.
// The border link itself never appears in either half's sub-network; the
// traffic the cut TTs carry across it is reserved through the lease
// table instead.

// halfSep joins a logical application name with its region index to name
// a half inside a shard scheduler ("app@0", "app@3"). The router rejects
// submitted names containing it, so halves are unambiguous in journals
// and snapshots.
const halfSep = "@"

// gateway CT names inside decomposed halves.
const (
	gwInName  = "__gw_in"
	gwOutName = "__gw_out"
)

func halfName(logical string, region int) string {
	return fmt.Sprintf("%s%s%d", logical, halfSep, region)
}

// logicalOfHalf splits a half name back into (logical, region).
func logicalOfHalf(name string) (string, int, bool) {
	i := strings.LastIndex(name, halfSep)
	if i < 0 {
		return "", 0, false
	}
	var region int
	if _, err := fmt.Sscanf(name[i+len(halfSep):], "%d", &region); err != nil {
		return "", 0, false
	}
	return name[:i], region, true
}

// classify determines the regions an application's pins touch. Apps with
// no pins or pins in one region are intra-region; pins across exactly two
// regions are cross-region; more is rejected (the lease protocol is
// pairwise).
func (p *Partitioning) classify(app core.App) (regions []int, err error) {
	seen := map[int]bool{}
	for ct, ncp := range app.Pins {
		if ncp < 0 || int(ncp) >= p.Parent.NumNCPs() {
			return nil, fmt.Errorf("shard: app %q pins CT %d to unknown NCP %d", app.Name, ct, ncp)
		}
		r := p.RegionOf(ncp)
		if !seen[r] {
			seen[r] = true
			regions = append(regions, r)
		}
	}
	sort.Ints(regions)
	if len(regions) > 2 {
		return nil, fmt.Errorf("shard: app %q pins span %d regions; at most 2 supported: %w",
			app.Name, len(regions), core.ErrRejected)
	}
	return regions, nil
}

// localizeApp translates an intra-region app's pins from parent NCP ids
// to the region view's local ids. For an identity view the app is
// returned untouched (same struct, same maps), keeping the single-shard
// path bit-for-bit the unsharded one.
func localizeApp(app core.App, view *network.RegionView) (core.App, error) {
	if view.Identity() || len(app.Pins) == 0 {
		return app, nil
	}
	pins := make(placement.Pins, len(app.Pins))
	for ct, ncp := range app.Pins {
		local, ok := view.LocalNCP(ncp)
		if !ok {
			return core.App{}, fmt.Errorf("shard: app %q pin on NCP %d outside its region", app.Name, ncp)
		}
		pins[ct] = local
	}
	out := app
	out.Pins = pins
	return out, nil
}

// crossPlan is the decomposition of one cross-region application.
type crossPlan struct {
	logical string
	class   core.Class
	a, b    int // region indices, a < b
	border  int // index into Partitioning.Border
	// bits is the total cut traffic per data unit (sum of cut TT bits in
	// both directions; an undirected border link shares its bandwidth).
	bits float64
	// halfA/halfB are the per-region half applications, pins already in
	// region-local ids, QoS set to a capped guaranteed-rate reservation
	// (RateCap filled in by the two-phase admit).
	halfA, halfB core.App
	// target is the end-to-end availability requirement (0 = none).
	target float64
	// linkFailProb is the border link's failure probability.
	linkFailProb float64
}

// sideAssignment maps every CT of app.Graph to region a or b: pinned CTs
// by their pin, unpinned CTs to the side of the nearest pinned CT in the
// undirected task graph (ties to the lower region index), CTs with no
// pinned ancestor/relative at all to the lower region index.
func sideAssignment(app core.App, p *Partitioning, a, b int) []int {
	g := app.Graph
	n := g.NumCTs()
	side := make([]int, n)
	dist := make([]int, n)
	for i := range side {
		side[i] = -1
		dist[i] = -1
	}
	var frontier []taskgraph.CTID
	for ct := 0; ct < n; ct++ {
		if ncp, ok := app.Pins[taskgraph.CTID(ct)]; ok {
			side[ct] = p.RegionOf(ncp)
			dist[ct] = 0
			frontier = append(frontier, taskgraph.CTID(ct))
		}
	}
	// Multi-source BFS; frontier kept in ascending CT order so that a CT
	// first reached at equal distance from both sides deterministically
	// takes the lower region index.
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		var next []taskgraph.CTID
		for _, u := range frontier {
			for _, tt := range g.AdjacentTTs(u) {
				t := g.TT(tt)
				v := t.From
				if v == u {
					v = t.To
				}
				if side[v] < 0 {
					side[v] = side[u]
					dist[v] = dist[u] + 1
					next = append(next, v)
				} else if dist[v] == dist[u]+1 && side[u] < side[v] {
					side[v] = side[u]
				}
			}
		}
		frontier = next
	}
	for ct := 0; ct < n; ct++ {
		if side[ct] < 0 {
			side[ct] = a
		}
	}
	_ = b
	return side
}

// planCross decomposes app (whose pins span regions a < b) against the
// chosen border link. Each side keeps its CTs and internal TTs; every
// cut TT is rerouted through a zero-requirement gateway CT pinned at
// that side's border endpoint (__gw_out collects traffic leaving the
// side, __gw_in injects traffic entering it), so each half remains a
// DAG and all cut traffic funnels through the leased link.
func planCross(app core.App, p *Partitioning, a, b, border int) (*crossPlan, error) {
	bl := p.Border[border]
	side := sideAssignment(app, p, a, b)

	plan := &crossPlan{
		logical:      app.Name,
		class:        app.QoS.Class,
		a:            a,
		b:            b,
		border:       border,
		linkFailProb: p.Parent.Link(bl.Link).FailProb,
	}
	switch app.QoS.Class {
	case core.GuaranteedRate:
		plan.target = app.QoS.MinRateAvailability
	case core.BestEffort:
		plan.target = app.QoS.Availability
	}

	build := func(region int, end network.NCPID) (core.App, float64, error) {
		g := app.Graph
		bld := taskgraph.NewBuilder(g.Name())
		local := make([]taskgraph.CTID, g.NumCTs())
		for i := range local {
			local[i] = -1
		}
		for ct := 0; ct < g.NumCTs(); ct++ {
			if side[ct] == region {
				c := g.CT(taskgraph.CTID(ct))
				local[ct] = bld.AddCT(c.Name, c.Req)
			}
		}
		gwIn, gwOut := taskgraph.CTID(-1), taskgraph.CTID(-1)
		cut := 0.0
		for tt := 0; tt < g.NumTTs(); tt++ {
			t := g.TT(taskgraph.TTID(tt))
			from, to := side[t.From] == region, side[t.To] == region
			switch {
			case from && to:
				bld.AddTT(t.Name, local[t.From], local[t.To], t.Bits)
			case from:
				if gwOut < 0 {
					gwOut = bld.AddCT(gwOutName, nil)
				}
				bld.AddTT(t.Name, local[t.From], gwOut, t.Bits)
				cut += t.Bits
			case to:
				if gwIn < 0 {
					gwIn = bld.AddCT(gwInName, nil)
				}
				bld.AddTT(t.Name, gwIn, local[t.To], t.Bits)
				cut += t.Bits
			}
		}
		sub, err := bld.Build()
		if err != nil {
			return core.App{}, 0, fmt.Errorf("shard: decompose %q for region %d: %w", app.Name, region, err)
		}
		view := p.Regions[region].View
		pins := placement.Pins{}
		for ct, ncp := range app.Pins {
			if side[ct] != region {
				continue
			}
			l, ok := view.LocalNCP(ncp)
			if !ok {
				return core.App{}, 0, fmt.Errorf("shard: app %q pin on NCP %d outside region %d", app.Name, ncp, region)
			}
			pins[local[ct]] = l
		}
		endLocal, ok := view.LocalNCP(end)
		if !ok {
			return core.App{}, 0, fmt.Errorf("shard: border endpoint %d outside region %d", end, region)
		}
		if gwIn >= 0 {
			pins[gwIn] = endLocal
		}
		if gwOut >= 0 {
			pins[gwOut] = endLocal
		}
		// Each half is admitted as a single-path guaranteed-rate
		// reservation: single path makes the two-phase rate trim exact
		// (per-path cap == total rate), and a reservation is what a lease
		// is. MinRate drives the side's min-rate availability analysis;
		// for BE apps an epsilon keeps it equivalent to at-least-one-path
		// availability.
		qos := core.QoS{
			Class:               core.GuaranteedRate,
			MinRate:             app.QoS.MinRate,
			MinRateAvailability: plan.target,
			MaxPaths:            1,
		}
		if app.QoS.Class == core.BestEffort {
			qos.MinRate = 1e-9
		}
		half := core.App{
			Name:  halfName(app.Name, region),
			Graph: sub,
			Pins:  pins,
			QoS:   qos,
		}
		return half, cut, nil
	}

	halfA, cutA, err := build(a, bl.EndA)
	if err != nil {
		return nil, err
	}
	halfB, cutB, err := build(b, bl.EndB)
	if err != nil {
		return nil, err
	}
	if cutA != cutB {
		return nil, fmt.Errorf("shard: app %q cut mismatch (%v vs %v)", app.Name, cutA, cutB)
	}
	if cutA <= 0 {
		// Pins span two regions but no TT crosses the cut: the graph's
		// components are region-pure, so no lease is needed — yet the two
		// halves still form one logical app. Reject rather than silently
		// splitting; such apps should be submitted as two.
		return nil, fmt.Errorf("shard: app %q spans two regions without cross traffic: %w",
			app.Name, core.ErrRejected)
	}
	plan.bits = cutA
	plan.halfA, plan.halfB = halfA, halfB
	return plan, nil
}

// chooseBorder picks the border link between regions a < b with the most
// unleased bandwidth (ties to the lowest parent link id). ok is false
// when the regions are not adjacent.
func chooseBorder(p *Partitioning, t *LeaseTable, a, b int) (int, bool) {
	best, bestAvail := -1, -1.0
	for i, bl := range p.Border {
		if bl.A != a || bl.B != b {
			continue
		}
		if avail := t.Available(i); avail > bestAvail {
			best, bestAvail = i, avail
		}
	}
	return best, best >= 0
}
