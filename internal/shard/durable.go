package shard

import (
	"fmt"
	"sort"

	"sparcle/internal/core"
	"sparcle/internal/network"
)

// Durability of the sharded control plane. Every shard scheduler's
// journal record is wrapped in an Envelope tagging its shard (and, for
// cross-region halves, the logical application), and the router's own
// border mutations — lease acquire/release/renew and border-link
// fluctuation scales — are journaled as lease/border envelopes in the
// same stream. Rebuild demultiplexes the stream: each shard's records
// replay through core.Rebuild against its region sub-network, the border
// envelopes replay into the lease table and the cross-app registry, and
// a final reconciliation pass withdraws cross-region halves that a crash
// left without their sibling or lease (the sharded analogue of a torn
// multi-record operation).

// EnvelopeHook persists one Envelope; it must be safe for concurrent
// calls (shards commit under their own locks).
type EnvelopeHook func(*Envelope) error

// Envelope is one journal entry of a sharded deployment.
type Envelope struct {
	// Shard is the region of a scheduler record; -1 for router-level
	// (lease / border-scale) envelopes.
	Shard int `json:"shard"`
	// Cross is the logical application name when Rec belongs to a
	// cross-region half.
	Cross string `json:"cross,omitempty"`
	// Rec is the wrapped scheduler record (shard envelopes).
	Rec *core.Record `json:"rec,omitempty"`
	// Lease is a border-lease mutation (router envelopes).
	Lease *LeaseRecord `json:"lease,omitempty"`
	// BorderScale, when non-nil, replaces the border-link fluctuation
	// scales (absent links return to nominal).
	BorderScale map[int]float64 `json:"borderScale,omitempty"`
	// IsBorderScale distinguishes an empty scale map (restore all
	// borders to nominal) from a non-scale envelope.
	IsBorderScale bool `json:"isBorderScale,omitempty"`
}

// Lease operation names.
const (
	leaseAcquire = "acquire"
	leaseRelease = "release"
	leaseRenew   = "renew"
)

// LeaseRecord journals one border-lease mutation; it carries the full
// cross-app metadata so recovery can rebuild the router's registry.
type LeaseRecord struct {
	Op           string     `json:"op"` // acquire, release, renew
	App          string     `json:"app"`
	Class        core.Class `json:"class"`
	A            int        `json:"a"`
	B            int        `json:"b"`
	Border       int        `json:"border"`
	Bits         float64    `json:"bits"`
	Rate         float64    `json:"rate"`
	Avail        float64    `json:"avail"`
	Target       float64    `json:"target"`
	LinkFailProb float64    `json:"linkFailProb"`
}

// RouterSnapshot captures the whole sharded control plane: one scheduler
// snapshot per region plus the border state.
type RouterSnapshot struct {
	Shards []*core.Snapshot `json:"shards"`
	// Leases are the granted leases with their cross-app metadata
	// (Op is empty), sorted by application name.
	Leases []LeaseRecord `json:"leases,omitempty"`
	// BorderScale is the current border-link fluctuation scale.
	BorderScale map[int]float64 `json:"borderScale,omitempty"`
}

// SetEnvelopeHook installs (or clears, with nil) the durability hook:
// each shard scheduler's commit hook is wrapped to emit tagged
// envelopes, and the router's own border mutations are journaled
// through the same hook. Install before serving traffic.
func (r *Router) SetEnvelopeHook(h EnvelopeHook) {
	r.commit = h
	for i, s := range r.slots {
		if h == nil {
			s.ctl.SetCommitHook(nil)
			continue
		}
		i, s := i, s
		s.ctl.SetCommitHook(func(rec *core.Record) error {
			return h(&Envelope{Shard: i, Cross: s.cross, Rec: rec})
		})
	}
}

func leaseRecordOf(op string, c *crossApp) *LeaseRecord {
	return &LeaseRecord{
		Op:           op,
		App:          c.logical,
		Class:        c.class,
		A:            c.a,
		B:            c.b,
		Border:       c.border,
		Bits:         c.bits,
		Rate:         c.rate,
		Avail:        c.avail,
		Target:       c.target,
		LinkFailProb: c.linkFailProb,
	}
}

// commitLease journals one lease mutation; a nil hook is free.
func (r *Router) commitLease(op string, c *crossApp) error {
	if r.commit == nil {
		return nil
	}
	if err := r.commit(&Envelope{Shard: -1, Lease: leaseRecordOf(op, c)}); err != nil {
		return fmt.Errorf("%w: %v", core.ErrDurability, err)
	}
	return nil
}

// commitBorderScale journals the border-link fluctuation scales.
func (r *Router) commitBorderScale(border map[int]float64) error {
	if r.commit == nil {
		return nil
	}
	env := &Envelope{Shard: -1, BorderScale: border, IsBorderScale: true}
	if err := r.commit(env); err != nil {
		return fmt.Errorf("%w: %v", core.ErrDurability, err)
	}
	return nil
}

// ExportSnapshot captures a consistent snapshot of every shard and the
// border state, holding all locks for the duration.
func (r *Router) ExportSnapshot() (*RouterSnapshot, error) {
	var snap *RouterSnapshot
	err := r.SnapshotWith(func(s *RouterSnapshot) error {
		snap = s
		return nil
	})
	return snap, err
}

// SnapshotWith exports a consistent snapshot and passes it to write
// while still holding every lock, so nothing can commit between the
// export and the write landing. Periodic journal snapshotting needs
// exactly this: a snapshot exported and then written later could miss
// operations journaled in between, and replay from it would lose them.
// write must not call back into the Router.
func (r *Router) SnapshotWith(write func(*RouterSnapshot) error) error {
	for _, s := range r.slots {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	r.borderMu.Lock()
	defer r.borderMu.Unlock()
	r.regMu.Lock()
	defer r.regMu.Unlock()

	snap := &RouterSnapshot{}
	for _, s := range r.slots {
		ss, err := s.ctl.ExportSnapshot()
		if err != nil {
			return err
		}
		snap.Shards = append(snap.Shards, ss)
	}
	var names []string
	for name, e := range r.apps {
		if e.cross != nil && !e.claimed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Leases = append(snap.Leases, *leaseRecordOf("", r.apps[name].cross))
	}
	if len(r.borderScale) > 0 {
		snap.BorderScale = make(map[int]float64, len(r.borderScale))
		for i, f := range r.borderScale {
			snap.BorderScale[i] = f
		}
	}
	return write(snap)
}

// ShardRebuilder reconstructs one region's scheduler from its snapshot
// and replayed records (typically a closure over core.Rebuild with the
// deployment's options).
type ShardRebuilder func(sub *network.Network, region int, snap *core.Snapshot, recs []*core.Record) (core.Control, error)

// Rebuild reconstructs a Router from a snapshot and the envelopes
// journaled after it. The partition is recomputed (Partition is
// deterministic), each shard replays through rebuildShard, the border
// envelopes replay into the lease table and registry, and halves torn
// by a crash mid-cross-operation are withdrawn.
func Rebuild(net *network.Network, k int, snap *RouterSnapshot, envs []*Envelope, rebuildShard ShardRebuilder) (*Router, error) {
	part, err := Partition(net, k)
	if err != nil {
		return nil, err
	}
	if snap != nil && len(snap.Shards) != k {
		return nil, fmt.Errorf("shard: snapshot has %d shards, deployment has %d", len(snap.Shards), k)
	}
	r := &Router{
		part:        part,
		leases:      NewLeaseTable(part),
		borderScale: map[int]float64{},
		apps:        map[string]*appEntry{},
	}

	// Demultiplex the envelope stream.
	shardRecs := make([][]*core.Record, k)
	var borderEnvs []*Envelope
	for _, env := range envs {
		switch {
		case env.Rec != nil:
			if env.Shard < 0 || env.Shard >= k {
				return nil, fmt.Errorf("shard: envelope for unknown shard %d", env.Shard)
			}
			shardRecs[env.Shard] = append(shardRecs[env.Shard], env.Rec)
		case env.Lease != nil || env.IsBorderScale:
			borderEnvs = append(borderEnvs, env)
		}
	}

	for _, reg := range part.Regions {
		var ss *core.Snapshot
		if snap != nil {
			ss = snap.Shards[reg.Index]
		}
		ctl, err := rebuildShard(reg.View.Net, reg.Index, ss, shardRecs[reg.Index])
		if err != nil {
			return nil, fmt.Errorf("shard: rebuild region %d: %w", reg.Index, err)
		}
		r.slots = append(r.slots, &slot{region: reg, ctl: ctl})
	}

	// Border state: snapshot first, then the journaled mutations in
	// order. Replay applies recorded facts — it does not re-validate
	// capacity (a lease granted before a degrading fluctuation stays
	// granted, exactly like the live table).
	applyLease := func(lr *LeaseRecord) {
		switch lr.Op {
		case leaseRelease:
			if r.leases.Lookup(lr.App) != nil {
				_, _ = r.leases.Release(lr.App)
			}
			delete(r.apps, lr.App)
		default: // acquire, renew, or snapshot state
			if r.leases.Lookup(lr.App) != nil {
				_, _ = r.leases.Release(lr.App)
			}
			r.leases.restore(&Lease{App: lr.App, Border: lr.Border, Bits: lr.Bits, Rate: lr.Rate})
			r.apps[lr.App] = &appEntry{shard: lr.A, cross: &crossApp{
				logical:      lr.App,
				class:        lr.Class,
				a:            lr.A,
				b:            lr.B,
				border:       lr.Border,
				bits:         lr.Bits,
				rate:         lr.Rate,
				avail:        lr.Avail,
				target:       lr.Target,
				linkFailProb: lr.LinkFailProb,
			}}
		}
	}
	applyScale := func(border map[int]float64) {
		for i := range part.Border {
			r.leases.SetScale(i, 1)
		}
		r.borderScale = map[int]float64{}
		for i, f := range border {
			if i >= 0 && i < len(part.Border) {
				r.leases.SetScale(i, f)
				r.borderScale[i] = f
			}
		}
	}
	if snap != nil {
		for i := range snap.Leases {
			applyLease(&snap.Leases[i])
		}
		if snap.BorderScale != nil {
			applyScale(snap.BorderScale)
		}
	}
	for _, env := range borderEnvs {
		if env.Lease != nil {
			applyLease(env.Lease)
		} else {
			applyScale(env.BorderScale)
		}
	}

	r.reconcile()
	return r, nil
}

// reconcile withdraws the debris a crash can leave between the multiple
// journal records of one cross-region operation: a half admitted without
// its lease (crash before the sibling/lease committed), a lease whose
// half is missing (crash mid-removal), and registers every intact
// intra-region app in the routing table.
func (r *Router) reconcile() {
	k := len(r.slots)
	present := make([]map[string]bool, k)
	for i, s := range r.slots {
		present[i] = map[string]bool{}
		for _, pa := range s.ctl.GRApps() {
			present[i][pa.App.Name] = true
		}
		for _, pa := range s.ctl.BEApps() {
			present[i][pa.App.Name] = true
		}
	}
	// Torn cross apps: lease present, a half missing → withdraw the rest.
	var drop []string
	for name, e := range r.apps {
		c := e.cross
		if c == nil {
			continue
		}
		okA := present[c.a][halfName(name, c.a)]
		okB := present[c.b][halfName(name, c.b)]
		if okA && okB {
			continue
		}
		if okA {
			_ = r.slots[c.a].ctl.Remove(halfName(name, c.a))
			present[c.a][halfName(name, c.a)] = false
		}
		if okB {
			_ = r.slots[c.b].ctl.Remove(halfName(name, c.b))
			present[c.b][halfName(name, c.b)] = false
		}
		_, _ = r.leases.Release(name)
		drop = append(drop, name)
	}
	for _, name := range drop {
		delete(r.apps, name)
	}
	// Orphan halves (admitted, no lease record survived) and intact
	// intra apps.
	for i, s := range r.slots {
		for name, ok := range present[i] {
			if !ok {
				continue
			}
			logical, region, isHalf := logicalOfHalf(name)
			if k > 1 && isHalf && region == i {
				if e, ok := r.apps[logical]; ok && e.cross != nil {
					continue // intact half of a registered cross app
				}
				_ = s.ctl.Remove(name)
				continue
			}
			r.apps[name] = &appEntry{shard: i}
		}
	}
}
