package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"sparcle/internal/core"
	"sparcle/internal/network"
)

func shardRebuilder(opts ...core.Option) ShardRebuilder {
	return func(sub *network.Network, region int, snap *core.Snapshot, recs []*core.Record) (core.Control, error) {
		return core.Rebuild(sub, snap, recs, opts...)
	}
}

// journalTape records envelopes like a journal would: by value, through
// a JSON round-trip, so replay sees exactly what a file would hold.
type journalTape struct {
	mu   sync.Mutex
	envs []*Envelope
}

func (j *journalTape) hook(env *Envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var cp Envelope
	if err := json.Unmarshal(b, &cp); err != nil {
		return err
	}
	j.mu.Lock()
	j.envs = append(j.envs, &cp)
	j.mu.Unlock()
	return nil
}

func routerStateJSON(t *testing.T, r *Router) string {
	t.Helper()
	snap, err := r.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRebuildRoundTrip: a mixed intra/cross workload journaled as
// envelopes rebuilds to a byte-identical router snapshot, and the
// rebuilt router keeps serving (remove the cross app, lease freed).
func TestRebuildRoundTrip(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)
	tape := &journalTape{}
	r.SetEnvelopeHook(tape.hook)

	grQoS := core.QoS{Class: core.GuaranteedRate, MinRate: 1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "inA", net, "a0", "a1", 5, grQoS), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(pipelineApp(t, "inB", net, "b0", "b1", 5,
		core.QoS{Class: core.BestEffort, Priority: 1, MaxPaths: 1}), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(pipelineApp(t, "cross", net, "a0", "b1", 10, grQoS), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(pipelineApp(t, "gone", net, "a0", "a1", 5, grQoS), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("gone", nil); err != nil {
		t.Fatal(err)
	}

	r2, err := Rebuild(net, 2, nil, tape.envs, shardRebuilder(core.WithRandSeed(1)))
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if got, want := routerStateJSON(t, r2), routerStateJSON(t, r); got != want {
		t.Fatalf("rebuilt state differs\nlive:    %s\nrebuilt: %s", want, got)
	}
	if r2.Stats().Leases != 1 {
		t.Fatalf("rebuilt leases = %d", r2.Stats().Leases)
	}
	// The rebuilt router still routes by logical name.
	if err := r2.Remove("cross", nil); err != nil {
		t.Fatalf("remove on rebuilt router: %v", err)
	}
	if r2.Stats().Leases != 0 {
		t.Fatal("lease survived removal on the rebuilt router")
	}
	if err := r2.Remove("inA", nil); err != nil {
		t.Fatalf("intra remove on rebuilt router: %v", err)
	}
}

// TestRebuildFromSnapshotAndTail: snapshot mid-stream, replay only the
// tail, same state.
func TestRebuildFromSnapshotAndTail(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)
	tape := &journalTape{}
	r.SetEnvelopeHook(tape.hook)

	grQoS := core.QoS{Class: core.GuaranteedRate, MinRate: 1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "cross", net, "a0", "b1", 10, grQoS), nil); err != nil {
		t.Fatal(err)
	}
	snap, err := r.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	cut := len(tape.envs)
	if _, err := r.Submit(pipelineApp(t, "inA", net, "a0", "a1", 5, grQoS), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyFluctuation(nil, nil); err != nil {
		t.Fatal(err)
	}

	// JSON round-trip the snapshot like a journal file would.
	sb, _ := json.Marshal(snap)
	var snap2 RouterSnapshot
	if err := json.Unmarshal(sb, &snap2); err != nil {
		t.Fatal(err)
	}
	r2, err := Rebuild(net, 2, &snap2, tape.envs[cut:], shardRebuilder(core.WithRandSeed(1)))
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if got, want := routerStateJSON(t, r2), routerStateJSON(t, r); got != want {
		t.Fatalf("snapshot+tail state differs\nlive:    %s\nrebuilt: %s", want, got)
	}
}

// TestRebuildReconcilesTornCross: if the crash loses the lease envelope
// (committed halves, no lease), the rebuilt router withdraws the orphan
// halves; if it loses a half, the lease and sibling go too.
func TestRebuildReconcilesTornCross(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)
	tape := &journalTape{}
	r.SetEnvelopeHook(tape.hook)
	grQoS := core.QoS{Class: core.GuaranteedRate, MinRate: 1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "cross", net, "a0", "b1", 10, grQoS), nil); err != nil {
		t.Fatal(err)
	}

	// Case 1: drop the lease envelope — the halves are orphans.
	var noLease []*Envelope
	for _, env := range tape.envs {
		if env.Lease != nil {
			continue
		}
		noLease = append(noLease, env)
	}
	r2, err := Rebuild(net, 2, nil, noLease, shardRebuilder(core.WithRandSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r2.Shard(0).GRApps()) + len(r2.Shard(1).GRApps()); n != 0 {
		t.Fatalf("orphan halves survived reconcile: %d", n)
	}
	if r2.Stats().Leases != 0 {
		t.Fatal("lease without envelope")
	}
	if err := r2.Remove("cross", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("torn app still routable: %v", err)
	}

	// Case 2: drop one half's admit record — lease + sibling withdrawn.
	var noHalfB []*Envelope
	for _, env := range tape.envs {
		if env.Rec != nil && env.Shard == 1 && env.Cross == "cross" {
			continue
		}
		noHalfB = append(noHalfB, env)
	}
	r3, err := Rebuild(net, 2, nil, noHalfB, shardRebuilder(core.WithRandSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r3.Shard(0).GRApps()) + len(r3.Shard(1).GRApps()); n != 0 {
		t.Fatalf("sibling of a lost half survived: %d", n)
	}
	if r3.Stats().Leases != 0 {
		t.Fatal("lease for a torn cross app survived")
	}
}

// TestConcurrentShardSubmits is the race hammer: goroutines submit,
// remove, and repair intra- and cross-region apps concurrently across
// shards. Run under -race in CI.
func TestConcurrentShardSubmits(t *testing.T) {
	net := dumbbellNet(t, 10000)
	r, err := New(net, 2, newCtlFactory(core.WithRandSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	tape := &journalTape{}
	r.SetEnvelopeHook(tape.hook)

	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	ends := [][2]string{{"a0", "a1"}, {"b0", "b1"}, {"a0", "b1"}, {"a1", "b0"}}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				e := ends[(w+i)%len(ends)]
				qos := core.QoS{Class: core.GuaranteedRate, MinRate: 0.5, MinRateAvailability: 0.4, MaxPaths: 1}
				if i%3 == 0 {
					qos = core.QoS{Class: core.BestEffort, Priority: 1, MaxPaths: 1}
				}
				_, err := r.Submit(pipelineApp(t, name, net, e[0], e[1], 2, qos), nil)
				if err != nil {
					if errors.Is(err, core.ErrRejected) {
						continue // capacity exhausted is fine under load
					}
					errc <- fmt.Errorf("%s: submit: %w", name, err)
					return
				}
				switch i % 4 {
				case 1:
					if err := r.Remove(name, nil); err != nil {
						errc <- fmt.Errorf("%s: remove: %w", name, err)
						return
					}
				case 2:
					if qos.Class != core.GuaranteedRate {
						break
					}
					if _, err := r.Repair(name, nil); err != nil && !errors.Is(err, core.ErrRejected) {
						errc <- fmt.Errorf("%s: repair: %w", name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The surviving state is internally consistent: every lease has both
	// halves, every registered app resolves.
	st := r.Stats()
	admitted := 0
	for _, s := range st.Shards {
		admitted += s.Admitted
	}
	if admitted == 0 {
		t.Fatal("no apps survived the hammer")
	}
	r2, err := Rebuild(net, 2, nil, tape.envs, shardRebuilder(core.WithRandSeed(1)))
	if err != nil {
		t.Fatalf("rebuild after hammer: %v", err)
	}
	if got, want := routerStateJSON(t, r2), routerStateJSON(t, r); got != want {
		t.Fatal("journal replay diverged from live state after concurrent load")
	}
}
