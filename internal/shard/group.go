package shard

import (
	"sparcle/internal/core"
	"sparcle/internal/obs"
)

// Group commit in the sharded router: one GroupCommitter per shard, so
// concurrent intra-region submits that land on the same region coalesce
// into one SubmitBatch under one shard-lock acquisition — one warm BE
// solve and one journal envelope for the whole group — while unrelated
// regions keep committing in parallel. Cross-region admissions keep
// their two-phase lease path ungrouped: they hold two shard locks plus
// the border mutex, and parking them inside a single shard's group
// would invert the lock order.

// EnableGroupCommit installs a committer on every shard. Call it after
// the journal is enabled: recovery rebuilds the router, and committers
// installed before that are discarded with the pre-recovery slots.
func (r *Router) EnableGroupCommit(opt core.GroupOptions) {
	for _, s := range r.slots {
		s := s
		s.group = core.NewGroupCommitter(func(apps []core.App, lead *obs.Span) ([]core.BatchResult, error) {
			s.lock(lead)
			defer s.mu.Unlock()
			return s.ctl.SubmitBatch(apps)
		}, opt)
	}
}

// GroupStats sums the per-shard committers' counters; the zero value
// means group commit is not enabled.
func (r *Router) GroupStats() core.GroupStats {
	var total core.GroupStats
	for _, s := range r.slots {
		if s.group == nil {
			continue
		}
		st := s.group.Stats()
		total.Groups += st.Groups
		total.Follows += st.Follows
		total.Apps += st.Apps
		total.MaxSize = st.MaxSize
		total.MaxWaitMS = st.MaxWaitMS
	}
	return total
}

// GroupEnabled reports whether EnableGroupCommit has run.
func (r *Router) GroupEnabled() bool {
	return len(r.slots) > 0 && r.slots[0].group != nil
}
