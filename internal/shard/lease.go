package shard

import "fmt"

// LeaseTable owns the border links' bandwidth. Regions never see border
// links in their sub-networks; a cross-region application instead
// acquires a lease — a bandwidth reservation on one border link sized to
// the traffic its cut task-transmissions carry — at admission, and the
// lease is released when the application is removed (or re-negotiated on
// repair), mirroring how a GR release returns reserved capacity inside
// one scheduler.
//
// The table is not concurrency-safe on its own; the Router serializes
// access under its border mutex.
type LeaseTable struct {
	part *Partitioning
	// base[i] is Border[i]'s nominal bandwidth; scale[i] the current
	// fluctuation factor (1 = nominal); leased[i] the sum of granted
	// leases.
	base   []float64
	scale  []float64
	leased []float64
	// byApp maps a logical application name to its lease.
	byApp map[string]*Lease
}

// Lease is one granted border-link reservation.
type Lease struct {
	// App is the logical (router-level) application name.
	App string
	// Border is the index into Partitioning.Border.
	Border int
	// Bits is the cut traffic per data unit (sum of cut TT bits); Rate
	// the application rate, so Bits*Rate is the leased bandwidth.
	Bits, Rate float64
}

// Bandwidth returns the lease's reserved bandwidth.
func (l *Lease) Bandwidth() float64 { return l.Bits * l.Rate }

// NewLeaseTable returns an empty lease table over p's border links.
func NewLeaseTable(p *Partitioning) *LeaseTable {
	t := &LeaseTable{
		part:   p,
		base:   make([]float64, len(p.Border)),
		scale:  make([]float64, len(p.Border)),
		leased: make([]float64, len(p.Border)),
		byApp:  map[string]*Lease{},
	}
	for i, b := range p.Border {
		t.base[i] = p.Parent.Link(b.Link).Bandwidth
		t.scale[i] = 1
	}
	return t
}

// Capacity returns border link i's current (fluctuation-scaled)
// bandwidth.
func (t *LeaseTable) Capacity(i int) float64 { return t.base[i] * t.scale[i] }

// Available returns the unleased bandwidth of border link i.
func (t *LeaseTable) Available(i int) float64 {
	a := t.Capacity(i) - t.leased[i]
	if a < 0 {
		return 0
	}
	return a
}

// Leased returns the bandwidth currently leased on border link i.
func (t *LeaseTable) Leased(i int) float64 { return t.leased[i] }

// Acquire grants app a lease of bits*rate on border link i. It fails if
// the application already holds a lease or the link lacks the
// bandwidth.
func (t *LeaseTable) Acquire(app string, i int, bits, rate float64) (*Lease, error) {
	if _, ok := t.byApp[app]; ok {
		return nil, fmt.Errorf("shard: app %q already holds a lease", app)
	}
	bw := bits * rate
	if bw <= 0 {
		return nil, fmt.Errorf("shard: app %q lease bandwidth %v must be positive", app, bw)
	}
	const tol = 1 + 1e-9
	if t.leased[i]+bw > t.Capacity(i)*tol {
		return nil, fmt.Errorf("shard: border link %d: lease %v exceeds available %v",
			i, bw, t.Available(i))
	}
	l := &Lease{App: app, Border: i, Bits: bits, Rate: rate}
	t.leased[i] += bw
	t.byApp[app] = l
	return l, nil
}

// Release returns app's leased bandwidth to its border link.
func (t *LeaseTable) Release(app string) (*Lease, error) {
	l, ok := t.byApp[app]
	if !ok {
		return nil, fmt.Errorf("shard: app %q holds no lease", app)
	}
	delete(t.byApp, app)
	t.leased[l.Border] -= l.Bandwidth()
	if t.leased[l.Border] < 0 {
		t.leased[l.Border] = 0
	}
	return l, nil
}

// Lookup returns app's lease, or nil.
func (t *LeaseTable) Lookup(app string) *Lease { return t.byApp[app] }

// restore inserts a lease without capacity checks: journal replay
// applies recorded facts, it does not re-validate them.
func (t *LeaseTable) restore(l *Lease) {
	t.byApp[l.App] = l
	t.leased[l.Border] += l.Bandwidth()
}

// SetScale applies a fluctuation factor to border link i's capacity and
// reports whether the granted leases still fit.
func (t *LeaseTable) SetScale(i int, f float64) (fits bool) {
	t.scale[i] = f
	const tol = 1 + 1e-9
	return t.leased[i] <= t.Capacity(i)*tol
}

// Violated returns the logical names of applications whose leases no
// longer fit their border link's scaled capacity, in lease-order per
// link (deterministic: ascending border index, then insertion order is
// not tracked, so names are sorted by the caller if needed).
func (t *LeaseTable) Violated() []string {
	const tol = 1 + 1e-9
	var out []string
	for _, l := range t.byApp {
		if t.leased[l.Border] > t.Capacity(l.Border)*tol {
			out = append(out, l.App)
		}
	}
	return out
}

// Count returns the number of granted leases.
func (t *LeaseTable) Count() int { return len(t.byApp) }

// Utilization returns leased/capacity for border link i (0 when the
// scaled capacity is 0).
func (t *LeaseTable) Utilization(i int) float64 {
	c := t.Capacity(i)
	if c <= 0 {
		if t.leased[i] > 0 {
			return 1
		}
		return 0
	}
	return t.leased[i] / c
}

// beShareDiv is the geometric-sharing factor for best-effort cross-region
// admissions: each BE lease may take at most 1/beShareDiv of the border
// link's remaining headroom.
const beShareDiv = 8.0
