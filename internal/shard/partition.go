// Package shard partitions a dispersed computing network into regions and
// runs one scheduler (with its own warm BE solver) per region behind a
// thin admission router, following the decentralized-mapping shape of
// Asaduzzaman & Maheswaran: each region runs the paper's Algorithms 1–2
// locally, and the regions coordinate only at their borders.
//
// The partition is an edge cut: every NCP belongs to exactly one region,
// links with both endpoints in one region belong to that region's
// sub-network, and the links whose endpoints fall in different regions —
// the border links — belong to no region. Border-link capacity is owned
// by a lease table instead; a cross-region application reserves a lease
// for the traffic its cut task-transmissions carry, negotiated between
// the two shards at admission and released on removal, like a GR release
// inside one scheduler.
//
// With one shard the partition is the identity and the router drives the
// seed scheduler with zero interposition — placements, availabilities,
// rates, and journal bytes stay byte-identical to an unsharded
// deployment (property-tested in router_test.go).
package shard

import (
	"fmt"

	"sparcle/internal/network"
)

// Region is one partition cell: a member set of the parent network and
// the extracted sub-network its scheduler runs against.
type Region struct {
	// Index is the region's position in Partitioning.Regions (the shard
	// id used in journal records and HTTP views).
	Index int
	// Members are the parent NCP ids in this region, ascending. The
	// view's local NCP i is Members[i].
	Members []network.NCPID
	// View is the extracted sub-network with id translations.
	View *network.RegionView
}

// BorderLink is a parent link whose endpoints lie in different regions.
type BorderLink struct {
	// Link is the parent link id.
	Link network.LinkID
	// A and B are the region indices of the two endpoints, A < B; EndA
	// and EndB are the corresponding parent endpoint NCPs.
	A, B       int
	EndA, EndB network.NCPID
}

// Partitioning is a complete region partition of a network.
type Partitioning struct {
	Parent  *network.Network
	Regions []*Region
	// Border lists the border links in ascending parent link order.
	Border []BorderLink

	regionOf []int // regionOf[v] is the region index of parent NCP v
}

// RegionOf returns the region index of a parent NCP.
func (p *Partitioning) RegionOf(v network.NCPID) int { return p.regionOf[v] }

// Partition cuts net into k regions. The algorithm is deterministic:
// farthest-point seeding (seed 0 is NCP 0; each next seed maximizes the
// BFS hop distance to all previous seeds, ties to the lowest id,
// unreachable NCPs preferred) followed by balanced BFS growth (the
// smallest region claims its next frontier NCP, ties to the lowest
// region index), with NCPs unreachable from every seed assigned, in
// ascending id order, to the then-smallest region. k = 1 returns the
// identity partition whose single view IS the parent network pointer,
// so a one-shard deployment is bit-for-bit the unsharded scheduler.
func Partition(net *network.Network, k int) (*Partitioning, error) {
	n := net.NumNCPs()
	if k < 1 {
		return nil, fmt.Errorf("shard: need at least 1 region, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("shard: %d regions exceed %d NCPs", k, n)
	}
	p := &Partitioning{Parent: net, regionOf: make([]int, n)}
	if k == 1 {
		members := make([]network.NCPID, n)
		for v := range members {
			members[v] = network.NCPID(v)
		}
		p.Regions = []*Region{{Index: 0, Members: members, View: network.WholeRegion(net)}}
		return p, nil
	}

	// Undirected adjacency over all links (directed links still bind
	// their endpoints into one neighborhood for partitioning purposes).
	adj := make([][]network.NCPID, n)
	for l := 0; l < net.NumLinks(); l++ {
		lk := net.Link(network.LinkID(l))
		adj[lk.A] = append(adj[lk.A], lk.B)
		adj[lk.B] = append(adj[lk.B], lk.A)
	}

	seeds := farthestPointSeeds(adj, k)
	for v := range p.regionOf {
		p.regionOf[v] = -1
	}
	sizes := make([]int, k)
	queues := make([][]network.NCPID, k)
	for r, s := range seeds {
		p.regionOf[s] = r
		sizes[r] = 1
		queues[r] = append(queues[r], adj[s]...)
	}
	// Balanced BFS growth: each round, the smallest region still holding
	// a frontier claims one NCP and extends its frontier.
	for {
		r := -1
		for i := 0; i < k; i++ {
			if len(queues[i]) == 0 {
				continue
			}
			if r < 0 || sizes[i] < sizes[r] {
				r = i
			}
		}
		if r < 0 {
			break
		}
		var v network.NCPID = -1
		for len(queues[r]) > 0 {
			c := queues[r][0]
			queues[r] = queues[r][1:]
			if p.regionOf[c] < 0 {
				v = c
				break
			}
		}
		if v < 0 {
			continue
		}
		p.regionOf[v] = r
		sizes[r]++
		queues[r] = append(queues[r], adj[v]...)
	}
	// NCPs unreachable from every seed (disconnected networks are legal).
	for v := 0; v < n; v++ {
		if p.regionOf[v] >= 0 {
			continue
		}
		r := 0
		for i := 1; i < k; i++ {
			if sizes[i] < sizes[r] {
				r = i
			}
		}
		p.regionOf[v] = r
		sizes[r]++
	}

	for r := 0; r < k; r++ {
		var members []network.NCPID
		for v := 0; v < n; v++ {
			if p.regionOf[v] == r {
				members = append(members, network.NCPID(v))
			}
		}
		view, err := network.ExtractRegion(net, members)
		if err != nil {
			return nil, err
		}
		p.Regions = append(p.Regions, &Region{Index: r, Members: members, View: view})
	}
	for l := 0; l < net.NumLinks(); l++ {
		lk := net.Link(network.LinkID(l))
		ra, rb := p.regionOf[lk.A], p.regionOf[lk.B]
		if ra == rb {
			continue
		}
		bl := BorderLink{Link: network.LinkID(l), A: ra, B: rb, EndA: lk.A, EndB: lk.B}
		if rb < ra {
			bl.A, bl.B, bl.EndA, bl.EndB = rb, ra, lk.B, lk.A
		}
		p.Border = append(p.Border, bl)
	}
	return p, nil
}

// farthestPointSeeds picks k mutually distant NCPs: NCP 0, then
// repeatedly the NCP maximizing the BFS hop distance to the nearest
// already-chosen seed (unreachable counts as infinitely far; ties go to
// the lowest id).
func farthestPointSeeds(adj [][]network.NCPID, k int) []network.NCPID {
	n := len(adj)
	seeds := []network.NCPID{0}
	dist := bfsFrom(adj, 0)
	for len(seeds) < k {
		best, bestD := -1, -1
		for v := 0; v < n; v++ {
			if dist[v] == 0 {
				continue // a seed itself
			}
			d := dist[v]
			if d < 0 {
				d = n + 1 // unreachable: farther than any path
			}
			if d > bestD {
				best, bestD = v, d
			}
		}
		if best < 0 {
			// Fewer distinct positions than seeds requested (complete
			// graph of size < k cannot happen: k <= n). Fall back to the
			// lowest unused id.
			for v := 0; v < n; v++ {
				if dist[v] != 0 {
					best = v
					break
				}
			}
		}
		seeds = append(seeds, network.NCPID(best))
		for v, d := range bfsFrom(adj, network.NCPID(best)) {
			if dist[v] < 0 || (d >= 0 && d < dist[v]) {
				dist[v] = d
			}
		}
	}
	return seeds
}

// bfsFrom returns hop distances from src; unreachable NCPs get -1.
func bfsFrom(adj [][]network.NCPID, src network.NCPID) []int {
	dist := make([]int, len(adj))
	for v := range dist {
		dist[v] = -1
	}
	dist[src] = 0
	queue := []network.NCPID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
