package shard

import (
	"math/rand"
	"testing"

	"sparcle/internal/network"
	"sparcle/internal/resource"
	"sparcle/internal/workload"
)

func meshNet(t *testing.T, n int) *network.Network {
	t.Helper()
	inst, err := workload.Generate(workload.GenConfig{
		Shape:    workload.ShapeLinear,
		Topology: workload.TopoMesh,
		Regime:   workload.Balanced,
		NumNCPs:  n,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return inst.Net
}

// lineNet builds a 1D chain n0 - n1 - ... - n_{k-1}.
func lineNet(t *testing.T, n int) *network.Network {
	t.Helper()
	b := network.NewBuilder("line")
	for i := 0; i < n; i++ {
		b.AddNCP("n"+string(rune('0'+i)), resource.Vector{resource.CPU: 100}, 0.01)
	}
	for i := 0; i < n-1; i++ {
		b.AddLink("l"+string(rune('0'+i)), network.NCPID(i), network.NCPID(i+1), 1000, 0.01)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestPartitionInvariants checks, across topologies and region counts:
// every NCP lands in exactly one region, a link is a border link iff its
// endpoints' regions differ, and region sub-networks preserve element
// names and capacities.
func TestPartitionInvariants(t *testing.T) {
	nets := []*network.Network{meshNet(t, 9), lineNet(t, 8)}
	for _, net := range nets {
		for k := 1; k <= 4; k++ {
			p, err := Partition(net, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", net.Name(), k, err)
			}
			if len(p.Regions) != k {
				t.Fatalf("%s k=%d: %d regions", net.Name(), k, len(p.Regions))
			}
			// Every NCP in exactly one region.
			owner := make([]int, net.NumNCPs())
			for i := range owner {
				owner[i] = -1
			}
			for _, reg := range p.Regions {
				if len(reg.Members) == 0 {
					t.Fatalf("%s k=%d: region %d empty", net.Name(), k, reg.Index)
				}
				for _, v := range reg.Members {
					if owner[v] != -1 {
						t.Fatalf("%s k=%d: NCP %d in regions %d and %d", net.Name(), k, v, owner[v], reg.Index)
					}
					owner[v] = reg.Index
				}
			}
			for v, r := range owner {
				if r == -1 {
					t.Fatalf("%s k=%d: NCP %d in no region", net.Name(), k, v)
				}
				if p.RegionOf(network.NCPID(v)) != r {
					t.Fatalf("%s k=%d: RegionOf(%d) = %d, member lists say %d",
						net.Name(), k, v, p.RegionOf(network.NCPID(v)), r)
				}
			}
			// Border iff endpoints differ; region links cover the rest.
			border := map[network.LinkID]bool{}
			for _, bl := range p.Border {
				border[bl.Link] = true
				l := net.Link(bl.Link)
				if owner[l.A] == owner[l.B] {
					t.Fatalf("%s k=%d: border link %d is region-internal", net.Name(), k, bl.Link)
				}
				if bl.A >= bl.B {
					t.Fatalf("%s k=%d: border link %d regions not ordered (%d, %d)", net.Name(), k, bl.Link, bl.A, bl.B)
				}
				if p.RegionOf(bl.EndA) != bl.A || p.RegionOf(bl.EndB) != bl.B {
					t.Fatalf("%s k=%d: border link %d endpoint regions mislabeled", net.Name(), k, bl.Link)
				}
			}
			regionLinks := 0
			for _, reg := range p.Regions {
				regionLinks += reg.View.Net.NumLinks()
				for li := 0; li < reg.View.Net.NumLinks(); li++ {
					parentID := reg.View.ParentLink(network.LinkID(li))
					l := net.Link(parentID)
					if owner[l.A] != reg.Index || owner[l.B] != reg.Index {
						t.Fatalf("%s k=%d: region %d holds link %d with foreign endpoint",
							net.Name(), k, reg.Index, parentID)
					}
					if border[parentID] {
						t.Fatalf("%s k=%d: link %d both border and regional", net.Name(), k, parentID)
					}
				}
				// Names and capacities preserved.
				for vi := 0; vi < reg.View.Net.NumNCPs(); vi++ {
					got := reg.View.Net.NCP(network.NCPID(vi))
					want := net.NCP(reg.View.ParentNCP(network.NCPID(vi)))
					if got.Name != want.Name || !got.Capacity.Equal(want.Capacity) || got.FailProb != want.FailProb {
						t.Fatalf("%s k=%d: region %d NCP %d differs from parent", net.Name(), k, reg.Index, vi)
					}
				}
			}
			if regionLinks+len(p.Border) != net.NumLinks() {
				t.Fatalf("%s k=%d: %d region links + %d border != %d total",
					net.Name(), k, regionLinks, len(p.Border), net.NumLinks())
			}
		}
	}
}

// TestPartitionSingleRegionIdentity: the k=1 partition is the identity —
// the single region's view IS the parent network (same pointer), and
// there are no border links.
func TestPartitionSingleRegionIdentity(t *testing.T) {
	net := meshNet(t, 6)
	p, err := Partition(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 1 || len(p.Border) != 0 {
		t.Fatalf("k=1: %d regions, %d border links", len(p.Regions), len(p.Border))
	}
	view := p.Regions[0].View
	if !view.Identity() {
		t.Fatal("k=1 view is not the identity")
	}
	if view.Net != net {
		t.Fatal("k=1 view does not share the parent network pointer")
	}
	if len(p.Regions[0].Members) != net.NumNCPs() {
		t.Fatalf("k=1 region has %d members", len(p.Regions[0].Members))
	}
	for v := 0; v < net.NumNCPs(); v++ {
		if p.RegionOf(network.NCPID(v)) != 0 {
			t.Fatalf("k=1: NCP %d not in region 0", v)
		}
	}
}

// TestPartitionDeterministic: identical inputs give identical partitions.
func TestPartitionDeterministic(t *testing.T) {
	net := meshNet(t, 10)
	a, err := Partition(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < net.NumNCPs(); v++ {
		if a.RegionOf(network.NCPID(v)) != b.RegionOf(network.NCPID(v)) {
			t.Fatalf("NCP %d assigned to %d then %d", v,
				a.RegionOf(network.NCPID(v)), b.RegionOf(network.NCPID(v)))
		}
	}
	if len(a.Border) != len(b.Border) {
		t.Fatalf("border count %d then %d", len(a.Border), len(b.Border))
	}
}

// TestPartitionBalance: BFS growth keeps regions within a reasonable
// size spread on a connected mesh.
func TestPartitionBalance(t *testing.T) {
	net := meshNet(t, 12)
	p, err := Partition(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, max := net.NumNCPs(), 0
	for _, reg := range p.Regions {
		if len(reg.Members) < min {
			min = len(reg.Members)
		}
		if len(reg.Members) > max {
			max = len(reg.Members)
		}
	}
	if max > 2*min+1 {
		t.Fatalf("unbalanced partition: min %d, max %d", min, max)
	}
}
