package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sparcle/internal/core"
	"sparcle/internal/network"
	"sparcle/internal/obs"
	"sparcle/internal/placement"
)

// Router is the thin admission front of a region-sharded control plane:
// one core scheduler (behind the core.Control seam) per region, each
// under its own lock, plus the border-lease table. Intra-region
// operations touch exactly one shard lock, so unrelated regions admit
// concurrently; cross-region operations take the two shard locks (in
// region order, so they cannot deadlock) and the border mutex.
type Router struct {
	part   *Partitioning
	slots  []*slot
	spans  *obs.SpanTracer
	newCtl func(sub *network.Network, region int) core.Control

	// borderMu guards the lease table and border scales.
	borderMu    sync.Mutex
	leases      *LeaseTable
	borderScale map[int]float64

	// regMu guards the logical-name registry (apps). Registry claims are
	// taken before shard locks and released without them, so the lock
	// order regMu < slot.mu < borderMu is never violated.
	regMu sync.Mutex
	apps  map[string]*appEntry

	// commit, when set, persists an Envelope for every mutating
	// operation (see durable.go). The hook must be safe for concurrent
	// calls: shards commit under their own locks.
	commit EnvelopeHook
}

// slot is one region's scheduler with its lock.
type slot struct {
	mu     sync.Mutex
	region *Region
	ctl    core.Control
	// group, when set (EnableGroupCommit), coalesces this shard's
	// intra-region submits into group commits; its commit closure takes
	// mu once per group.
	group *core.GroupCommitter
	// cross names the logical cross-region app currently operating on
	// this shard (set under mu); the commit wrapper tags the shard's
	// records with it.
	cross string
}

// appEntry routes a logical application name.
type appEntry struct {
	// shard owns an intra-region app; unused (0) when cross is set.
	shard int
	cross *crossApp
	// claimed marks an in-flight admission holding the name.
	claimed bool
}

// crossApp is the router-level record of an admitted cross-region app.
type crossApp struct {
	logical      string
	class        core.Class
	a, b, border int
	bits         float64
	rate         float64
	avail        float64
	target       float64
	linkFailProb float64
}

// New partitions net into k regions and builds a Router running one
// scheduler per region. newCtl constructs each region's scheduler over
// its sub-network (for k = 1 the sub-network IS net); it is also reused
// by Rebuild during journal recovery.
func New(net *network.Network, k int, newCtl func(sub *network.Network, region int) core.Control) (*Router, error) {
	part, err := Partition(net, k)
	if err != nil {
		return nil, err
	}
	r := &Router{
		part:        part,
		newCtl:      newCtl,
		leases:      NewLeaseTable(part),
		borderScale: map[int]float64{},
		apps:        map[string]*appEntry{},
	}
	for _, reg := range part.Regions {
		r.slots = append(r.slots, &slot{region: reg, ctl: newCtl(reg.View.Net, reg.Index)})
	}
	return r, nil
}

// Partitioning exposes the region partition (read-only).
func (r *Router) Partitioning() *Partitioning { return r.part }

// NumShards returns the number of regions.
func (r *Router) NumShards() int { return len(r.slots) }

// Shard returns region i's scheduler. The caller must not mutate
// through it while the router is serving (the router owns the locks);
// tests use it to compare single-shard state against an unsharded
// scheduler.
func (r *Router) Shard(i int) core.Control { return r.slots[i].ctl }

// SetSpans attaches a span tracer for router-level spans (the per-shard
// lock.wait children) and propagates it to every shard scheduler that
// supports span tracing, so the shards' own operation spans (core.submit
// and its pipeline stages) keep flowing in a sharded deployment.
func (r *Router) SetSpans(st *obs.SpanTracer) {
	r.spans = st
	for _, s := range r.slots {
		if ss, ok := s.ctl.(interface{ SetSpans(*obs.SpanTracer) }); ok {
			ss.SetSpans(st)
		}
	}
}

// lock acquires the slot's mutex, attributing the wait to a lock.wait
// child span (mirroring the single-lock server's span, so sharded
// lock.wait spans visibly shrink).
func (s *slot) lock(sp *obs.Span) {
	w := sp.Child("lock.wait")
	w.SetInt("shard", int64(s.region.Index))
	s.mu.Lock()
	w.End()
}

// Result is one admission's outcome.
type Result struct {
	// Shard is the owning region (for cross apps, the lower region).
	Shard int
	// App is the placed application: the shard's own placement for
	// intra-region apps, or a synthesized logical view (no paths — they
	// live region-locally in the halves) for cross-region apps.
	App *core.PlacedApp
	// Cross is set for cross-region admissions.
	Cross *CrossInfo
}

// CrossInfo describes a cross-region placement.
type CrossInfo struct {
	A, B         int
	HalfA, HalfB *core.PlacedApp
	Border       int
	BorderLink   string
	Bits         float64
	Rate         float64
	Availability float64
}

// errShardName rejects logical names that could collide with half names.
func (r *Router) checkName(name string) error {
	if len(r.slots) > 1 && strings.Contains(name, halfSep) {
		return fmt.Errorf("shard: app name %q may not contain %q in a sharded deployment: %w",
			name, halfSep, core.ErrRejected)
	}
	return nil
}

// claim reserves a logical name in the registry; it fails on duplicates.
func (r *Router) claim(name string) error {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if _, ok := r.apps[name]; ok {
		return fmt.Errorf("shard: application %q already admitted: %w", name, core.ErrRejected)
	}
	r.apps[name] = &appEntry{claimed: true}
	return nil
}

func (r *Router) unclaim(name string) {
	r.regMu.Lock()
	delete(r.apps, name)
	r.regMu.Unlock()
}

func (r *Router) settle(name string, e *appEntry) {
	r.regMu.Lock()
	e.claimed = false
	r.apps[name] = e
	r.regMu.Unlock()
}

// Submit classifies app and admits it: intra-region apps route, under
// only their shard's lock, to their region's scheduler; cross-region
// apps run the two-phase border-lease admission. sp (nil-safe) parents
// the lock.wait and shard operation spans.
func (r *Router) Submit(app core.App, sp *obs.Span) (*Result, error) {
	if err := r.checkName(app.Name); err != nil {
		return nil, err
	}
	regions, err := r.part.classify(app)
	if err != nil {
		return nil, err
	}
	if len(r.slots) == 1 {
		// Single shard: drive the seed scheduler with zero interposition
		// (no registry, no translation) — bit-for-bit the unsharded path.
		return r.submitIntra(app, 0, sp, false)
	}
	if len(regions) == 2 {
		return r.submitCross(app, regions[0], regions[1], sp)
	}
	shard := 0
	if len(regions) == 1 {
		shard = regions[0]
	} else {
		shard = r.leastLoadedShard(sp)
	}
	return r.submitIntra(app, shard, sp, true)
}

func (r *Router) submitIntra(app core.App, shard int, sp *obs.Span, register bool) (*Result, error) {
	if register {
		if err := r.claim(app.Name); err != nil {
			return nil, err
		}
	}
	s := r.slots[shard]
	local, err := localizeApp(app, s.region.View)
	if err != nil {
		if register {
			r.unclaim(app.Name)
		}
		return nil, err
	}
	var pa *core.PlacedApp
	if s.group != nil {
		// Group path: park with the shard's committer; the leader takes
		// the shard lock once for everyone it drains.
		res, gerr := s.group.Submit(local, sp)
		pa, err = res.App, res.Err
		if err == nil {
			err = gerr
		}
	} else {
		s.lock(sp)
		pa, err = s.ctl.Submit(local)
		s.mu.Unlock()
	}
	if err != nil {
		if register {
			r.unclaim(app.Name)
		}
		return nil, err
	}
	if register {
		r.settle(app.Name, &appEntry{shard: shard})
	}
	return &Result{Shard: shard, App: pa}, nil
}

// leastLoadedShard picks the shard with the fewest admitted apps (ties
// to the lowest region index) for apps with no pins.
func (r *Router) leastLoadedShard(sp *obs.Span) int {
	best, bestN := 0, -1
	for i, s := range r.slots {
		s.lock(sp)
		n := len(s.ctl.GRApps()) + len(s.ctl.BEApps())
		s.mu.Unlock()
		if bestN < 0 || n < bestN {
			best, bestN = i, n
		}
	}
	return best
}

// rateTol is the relative tolerance inside which the two halves' rates
// are considered equal (floating-point slack of two independent solves).
const rateTol = 1e-9

// submitCross admits an app whose pins span regions a < b: decompose
// into two halves joined at the best border link, reserve side A capped
// by the lease headroom, side B capped by side A's achieved rate, trim
// side A down if B got less, then lease bits*rate on the border link.
// Any failure rolls back both halves; the combined availability
// aA*aB*(1-p_link) must clear the app's target.
func (r *Router) submitCross(app core.App, a, b int, sp *obs.Span) (*Result, error) {
	if err := r.claim(app.Name); err != nil {
		return nil, err
	}
	res, cross, err := r.admitCross(app, a, b, sp)
	if err != nil {
		r.unclaim(app.Name)
		return nil, err
	}
	r.settle(app.Name, &appEntry{shard: a, cross: cross})
	return res, nil
}

func crossTarget(q core.QoS) float64 {
	if q.Class == core.GuaranteedRate {
		return q.MinRateAvailability
	}
	return q.Availability
}

func (r *Router) admitCross(app core.App, a, b int, sp *obs.Span) (*Result, *crossApp, error) {
	sa, sb := r.slots[a], r.slots[b]
	sa.lock(sp)
	defer sa.mu.Unlock()
	sb.lock(sp)
	defer sb.mu.Unlock()

	r.borderMu.Lock()
	border, ok := chooseBorder(r.part, r.leases, a, b)
	var headroom float64
	if ok {
		headroom = r.leases.Available(border)
	}
	r.borderMu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("shard: regions %d and %d share no border link for app %q: %w",
			a, b, app.Name, core.ErrRejected)
	}
	plan, err := planCross(app, r.part, a, b, border)
	if err != nil {
		return nil, nil, err
	}
	if app.QoS.Class == core.BestEffort {
		// A guaranteed-rate app may lease everything its reservation can
		// carry — that is what a bottleneck-rate reservation means. A
		// best-effort app must share: cap it at a slice of the remaining
		// headroom so successive BE apps split the border geometrically
		// instead of the first arrival starving the rest. The reservation
		// its halves make inside each region shrinks with the same factor,
		// which keeps intra-region paths from zeroing out under sustained
		// BE churn. This is a static stand-in for the eq. (4)
		// proportional-fair share, which cannot span two independent
		// per-region solvers.
		headroom /= beShareDiv
	}
	r0 := headroom / plan.bits
	if r0 <= 0 {
		return nil, nil, fmt.Errorf("shard: border link %q has no lease headroom for app %q: %w",
			r.part.Parent.Link(r.part.Border[border].Link).Name, app.Name, core.ErrRejected)
	}

	submitHalf := func(s *slot, half core.App, cap float64) (*core.PlacedApp, error) {
		half.QoS.RateCap = cap
		s.cross = app.Name
		pa, err := s.ctl.Submit(half)
		s.cross = ""
		return pa, err
	}
	paA, err := submitHalf(sa, plan.halfA, r0)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: app %q region %d half: %w", app.Name, a, err)
	}
	rollbackA := func() {
		sa.cross = app.Name
		_ = sa.ctl.Remove(plan.halfA.Name)
		sa.cross = ""
	}
	rateA := paA.TotalRate()
	paB, err := submitHalf(sb, plan.halfB, rateA)
	if err != nil {
		rollbackA()
		return nil, nil, fmt.Errorf("shard: app %q region %d half: %w", app.Name, b, err)
	}
	rollbackB := func() {
		sb.cross = app.Name
		_ = sb.ctl.Remove(plan.halfB.Name)
		sb.cross = ""
	}
	rate := paB.TotalRate()
	if rate < rateA*(1-rateTol) {
		// Side B is the bottleneck: trim side A's reservation down to
		// rate so the lease (and the end-to-end claim) is exact. The
		// resubmission sees at least the capacity the removed half had,
		// so with the cap binding it reserves exactly rate.
		rollbackA()
		paA, err = submitHalf(sa, plan.halfA, rate)
		if err != nil {
			rollbackB()
			return nil, nil, fmt.Errorf("shard: app %q region %d trim: %w", app.Name, a, err)
		}
		rateA = paA.TotalRate()
		if rateA < rate*(1-rateTol) {
			rollbackA()
			rollbackB()
			return nil, nil, fmt.Errorf("shard: app %q rate trim did not converge (%v vs %v): %w",
				app.Name, rateA, rate, core.ErrRejected)
		}
	}

	avail := paA.Availability * paB.Availability * (1 - plan.linkFailProb)
	if plan.target > 0 && avail < plan.target {
		rollbackA()
		rollbackB()
		return nil, nil, fmt.Errorf("shard: app %q end-to-end availability %.4f < requested %.4f (a=%.4f, b=%.4f, border %q): %w",
			app.Name, avail, plan.target, paA.Availability, paB.Availability,
			r.part.Parent.Link(r.part.Border[border].Link).Name, core.ErrRejected)
	}

	rate = paB.TotalRate()
	if rateA < rate {
		rate = rateA
	}
	r.borderMu.Lock()
	_, err = r.leases.Acquire(app.Name, border, plan.bits, rate)
	r.borderMu.Unlock()
	if err != nil {
		rollbackA()
		rollbackB()
		return nil, nil, fmt.Errorf("shard: app %q: %w: %v", app.Name, core.ErrRejected, err)
	}
	cross := &crossApp{
		logical:      app.Name,
		class:        app.QoS.Class,
		a:            a,
		b:            b,
		border:       border,
		bits:         plan.bits,
		rate:         rate,
		avail:        avail,
		target:       plan.target,
		linkFailProb: plan.linkFailProb,
	}
	if cerr := r.commitLease(leaseAcquire, cross); cerr != nil {
		return nil, nil, cerr
	}

	return &Result{
		Shard: a,
		App: &core.PlacedApp{
			App:          app,
			Availability: avail,
		},
		Cross: &CrossInfo{
			A:            a,
			B:            b,
			HalfA:        paA,
			HalfB:        paB,
			Border:       border,
			BorderLink:   r.part.Parent.Link(r.part.Border[border].Link).Name,
			Bits:         plan.bits,
			Rate:         rate,
			Availability: avail,
		},
	}, cross, nil
}

// SubmitBatch admits a batch. With one shard it is the seed scheduler's
// atomic batch verbatim. Across shards, the batch is split: each
// shard's intra-region members run as that shard's atomic sub-batch
// (one solve, one record), and cross-region members are admitted
// individually; atomicity is per shard, not global.
func (r *Router) SubmitBatch(apps []core.App, sp *obs.Span) ([]core.BatchResult, error) {
	if len(r.slots) == 1 {
		s := r.slots[0]
		if s.group != nil {
			return s.group.SubmitMany(apps, sp)
		}
		s.lock(sp)
		defer s.mu.Unlock()
		return s.ctl.SubmitBatch(apps)
	}
	results := make([]core.BatchResult, len(apps))
	byShard := map[int][]int{} // shard -> indices into apps
	var shards []int
	for i, app := range apps {
		results[i].Name = app.Name
		if err := r.checkName(app.Name); err != nil {
			results[i].Err = err
			continue
		}
		regions, err := r.part.classify(app)
		if err != nil {
			results[i].Err = err
			continue
		}
		switch len(regions) {
		case 2:
			res, err := r.submitCross(app, regions[0], regions[1], sp)
			if err != nil {
				results[i].Err = err
			} else {
				results[i].App = res.App
			}
		default:
			shard := 0
			if len(regions) == 1 {
				shard = regions[0]
			} else {
				shard = r.leastLoadedShard(sp)
			}
			if err := r.claim(app.Name); err != nil {
				results[i].Err = err
				continue
			}
			if _, ok := byShard[shard]; !ok {
				shards = append(shards, shard)
			}
			byShard[shard] = append(byShard[shard], i)
		}
	}
	sort.Ints(shards)
	var firstErr error
	for _, shard := range shards {
		idx := byShard[shard]
		sub := make([]core.App, 0, len(idx))
		ok := true
		for _, i := range idx {
			local, err := localizeApp(apps[i], r.slots[shard].region.View)
			if err != nil {
				results[i].Err = err
				r.unclaim(apps[i].Name)
				ok = false
				continue
			}
			sub = append(sub, local)
		}
		if !ok && len(sub) == 0 {
			continue
		}
		s := r.slots[shard]
		var res []core.BatchResult
		var err error
		if s.group != nil {
			// The shard's sub-batch enters its committer as one entry, so
			// it stays atomic while merging with concurrent single submits.
			res, err = s.group.SubmitMany(sub, sp)
		} else {
			s.lock(sp)
			res, err = s.ctl.SubmitBatch(sub)
			s.mu.Unlock()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		j := 0
		for _, i := range idx {
			if results[i].Err != nil {
				continue // localization failure above
			}
			results[i] = res[j]
			j++
			if results[i].Err != nil {
				r.unclaim(apps[i].Name)
			} else {
				r.settle(apps[i].Name, &appEntry{shard: shard})
			}
		}
	}
	return results, firstErr
}

// Remove withdraws a logical application: intra-region apps release in
// their shard; cross-region apps release both halves and return the
// lease to the border link (the sharded analogue of a GR release).
func (r *Router) Remove(name string, sp *obs.Span) error {
	if len(r.slots) == 1 {
		s := r.slots[0]
		s.lock(sp)
		defer s.mu.Unlock()
		return s.ctl.Remove(name)
	}
	r.regMu.Lock()
	e, ok := r.apps[name]
	if !ok || e.claimed {
		r.regMu.Unlock()
		return fmt.Errorf("shard: no admitted application named %q: %w", name, core.ErrNotFound)
	}
	r.regMu.Unlock()
	if e.cross == nil {
		s := r.slots[e.shard]
		s.lock(sp)
		err := s.ctl.Remove(name)
		s.mu.Unlock()
		if err != nil && errors.Is(err, core.ErrNotFound) {
			return err
		}
		r.unclaim(name)
		return err
	}
	return r.removeCross(name, e.cross, sp)
}

func (r *Router) removeCross(name string, c *crossApp, sp *obs.Span) error {
	sa, sb := r.slots[c.a], r.slots[c.b]
	sa.lock(sp)
	defer sa.mu.Unlock()
	sb.lock(sp)
	defer sb.mu.Unlock()

	var firstErr error
	sa.cross = name
	if err := sa.ctl.Remove(halfName(name, c.a)); err != nil && firstErr == nil {
		firstErr = err
	}
	sa.cross = ""
	sb.cross = name
	if err := sb.ctl.Remove(halfName(name, c.b)); err != nil && firstErr == nil {
		firstErr = err
	}
	sb.cross = ""
	r.borderMu.Lock()
	_, lerr := r.leases.Release(name)
	r.borderMu.Unlock()
	if lerr == nil {
		if cerr := r.commitLease(leaseRelease, c); cerr != nil && firstErr == nil {
			firstErr = cerr
		}
	} else if firstErr == nil {
		firstErr = lerr
	}
	r.unclaim(name)
	return firstErr
}

// Repair re-places an application after element failures. Intra-region
// repair is the shard scheduler's Repair. Cross-region repair releases
// the lease, repairs both halves, re-trims their rates to agree, and
// leases the new rate; if any step fails the app is fully withdrawn
// (unlike an intra repair, which restores the old placement — the old
// two-shard placement cannot be restored atomically once one side moved).
func (r *Router) Repair(name string, sp *obs.Span) (*Result, error) {
	if len(r.slots) == 1 {
		s := r.slots[0]
		s.lock(sp)
		defer s.mu.Unlock()
		pa, err := s.ctl.Repair(name)
		if err != nil {
			return nil, err
		}
		return &Result{Shard: 0, App: pa}, nil
	}
	r.regMu.Lock()
	e, ok := r.apps[name]
	if !ok || e.claimed {
		r.regMu.Unlock()
		return nil, fmt.Errorf("shard: no admitted application named %q: %w", name, core.ErrNotFound)
	}
	r.regMu.Unlock()
	if e.cross == nil {
		s := r.slots[e.shard]
		s.lock(sp)
		pa, err := s.ctl.Repair(name)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return &Result{Shard: e.shard, App: pa}, nil
	}
	return r.repairCross(name, e, sp)
}

func (r *Router) repairCross(name string, e *appEntry, sp *obs.Span) (*Result, error) {
	c := e.cross
	sa, sb := r.slots[c.a], r.slots[c.b]
	sa.lock(sp)
	defer sa.mu.Unlock()
	sb.lock(sp)
	defer sb.mu.Unlock()

	fail := func(err error) (*Result, error) {
		// Full withdrawal: remove whatever halves remain and the lease.
		sa.cross = name
		_ = sa.ctl.Remove(halfName(name, c.a))
		sa.cross = ""
		sb.cross = name
		_ = sb.ctl.Remove(halfName(name, c.b))
		sb.cross = ""
		r.borderMu.Lock()
		_, lerr := r.leases.Release(name)
		r.borderMu.Unlock()
		if lerr == nil {
			_ = r.commitLease(leaseRelease, c)
		}
		r.unclaim(name)
		return nil, fmt.Errorf("shard: cross-region repair of %q failed, app withdrawn: %w", name, err)
	}

	repairHalf := func(s *slot, region int) (*core.PlacedApp, error) {
		s.cross = name
		pa, err := s.ctl.Repair(halfName(name, region))
		s.cross = ""
		return pa, err
	}
	paA, err := repairHalf(sa, c.a)
	if err != nil {
		return fail(err)
	}
	paB, err := repairHalf(sb, c.b)
	if err != nil {
		return fail(err)
	}
	rateA, rateB := paA.TotalRate(), paB.TotalRate()
	rate := rateA
	if rateB < rate {
		rate = rateB
	}
	// The border link's capacity may have changed (fluctuation) since the
	// lease was granted: renegotiate against its *current* headroom —
	// capacity minus the OTHER apps' leases, since this app's own lease is
	// released before the new one is acquired. (Not Available()+own: that
	// clamps at zero and would overstate headroom once capacity falls
	// below the old lease.) BE apps keep their geometric share.
	r.borderMu.Lock()
	headroom := r.leases.Capacity(c.border) - (r.leases.Leased(c.border) - c.bits*c.rate)
	r.borderMu.Unlock()
	if c.class == core.BestEffort {
		headroom /= beShareDiv
	}
	if headroom <= 0 {
		return fail(fmt.Errorf("shard: border link %q has no lease headroom: %w",
			r.part.Parent.Link(r.part.Border[c.border].Link).Name, core.ErrRejected))
	}
	if cap := headroom / c.bits; cap < rate {
		rate = cap
	}
	trim := func(s *slot, region int, pa *core.PlacedApp) (*core.PlacedApp, error) {
		app := pa.App
		app.QoS.RateCap = rate
		s.cross = name
		defer func() { s.cross = "" }()
		if err := s.ctl.Remove(pa.App.Name); err != nil {
			return nil, err
		}
		return s.ctl.Submit(app)
	}
	if rateA > rate*(1+rateTol) {
		if paA, err = trim(sa, c.a, paA); err != nil {
			return fail(err)
		}
	}
	if rateB > rate*(1+rateTol) {
		if paB, err = trim(sb, c.b, paB); err != nil {
			return fail(err)
		}
	}
	avail := paA.Availability * paB.Availability * (1 - c.linkFailProb)
	if c.target > 0 && avail < c.target {
		return fail(fmt.Errorf("shard: repaired availability %.4f < requested %.4f: %w",
			avail, c.target, core.ErrRejected))
	}
	r.borderMu.Lock()
	_, lerr := r.leases.Release(name)
	if lerr == nil {
		_, lerr = r.leases.Acquire(name, c.border, c.bits, rate)
	}
	r.borderMu.Unlock()
	if lerr != nil {
		return fail(lerr)
	}
	c.rate = rate
	c.avail = avail
	if cerr := r.commitLease(leaseRenew, c); cerr != nil {
		return nil, cerr
	}
	return &Result{
		Shard: c.a,
		App: &core.PlacedApp{
			App:          core.App{Name: name, QoS: core.QoS{Class: c.class}},
			Availability: avail,
		},
		Cross: &CrossInfo{
			A: c.a, B: c.b, HalfA: paA, HalfB: paB,
			Border:       c.border,
			BorderLink:   r.part.Parent.Link(r.part.Border[c.border].Link).Name,
			Bits:         c.bits,
			Rate:         rate,
			Availability: avail,
		},
	}, nil
}

// ApplyFluctuation applies a global capacity fluctuation: the scale map
// (keyed by parent-network elements) is split per region and into
// border-link scales; each shard re-evaluates its own population, and
// the lease table reports cross-region apps whose leases no longer fit.
// Like core.ApplyFluctuation, the scale REPLACES the previous one —
// elements absent from the map return to nominal capacity.
func (r *Router) ApplyFluctuation(scale core.ElementScale, sp *obs.Span) (*core.FluctuationReport, error) {
	if len(r.slots) == 1 {
		s := r.slots[0]
		s.lock(sp)
		defer s.mu.Unlock()
		return s.ctl.ApplyFluctuation(scale)
	}
	parent := r.part.Parent
	nNCP, nLink := parent.NumNCPs(), parent.NumLinks()
	for e, f := range scale {
		if f < 0 {
			return nil, fmt.Errorf("shard: invalid capacity scale %v for element %d", f, e)
		}
		if int(e) < 0 || int(e) >= nNCP+nLink {
			return nil, fmt.Errorf("shard: unknown element %d in fluctuation", e)
		}
	}
	// Split the parent-element scale into per-region local scales and
	// border scales.
	borderIdx := map[network.LinkID]int{}
	for i, bl := range r.part.Border {
		borderIdx[bl.Link] = i
	}
	sub := make([]core.ElementScale, len(r.slots))
	border := map[int]float64{}
	for e, f := range scale {
		if int(e) < nNCP {
			v := network.NCPID(e)
			reg := r.part.RegionOf(v)
			view := r.part.Regions[reg].View
			local, _ := view.LocalNCP(v)
			if sub[reg] == nil {
				sub[reg] = core.ElementScale{}
			}
			sub[reg][placement.NCPElement(local)] = f
			continue
		}
		l := network.LinkID(int(e) - nNCP)
		if bi, ok := borderIdx[l]; ok {
			border[bi] = f
			continue
		}
		reg := r.part.RegionOf(parent.Link(l).A)
		view := r.part.Regions[reg].View
		local, ok := view.LocalLink(l)
		if !ok {
			return nil, fmt.Errorf("shard: link %d belongs to no region", l)
		}
		if sub[reg] == nil {
			sub[reg] = core.ElementScale{}
		}
		sub[reg][placement.LinkElement(view.Net, local)] = f
	}

	for _, s := range r.slots {
		s.lock(sp)
		defer s.mu.Unlock()
	}
	report := &core.FluctuationReport{BERates: map[string]float64{}}
	var firstErr error
	for i, s := range r.slots {
		rep, err := s.ctl.ApplyFluctuation(sub[i])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if rep == nil {
			continue
		}
		for _, v := range rep.ViolatedGR {
			report.ViolatedGR = append(report.ViolatedGR, r.logicalName(v))
		}
		for n, rate := range rep.BERates {
			report.BERates[n] = rate
		}
	}
	r.borderMu.Lock()
	for i := range r.part.Border {
		r.leases.SetScale(i, 1)
	}
	r.borderScale = border
	for i, f := range border {
		r.leases.SetScale(i, f)
	}
	violated := r.leases.Violated()
	r.borderMu.Unlock()
	sort.Strings(violated)
	report.ViolatedGR = append(report.ViolatedGR, violated...)
	sort.Strings(report.ViolatedGR)
	report.ViolatedGR = dedupe(report.ViolatedGR)
	if cerr := r.commitBorderScale(border); cerr != nil && firstErr == nil {
		firstErr = cerr
	}
	return report, firstErr
}

// logicalName maps a shard-local app name back to its logical name
// (halves lose their region suffix).
func (r *Router) logicalName(name string) string {
	logical, _, ok := logicalOfHalf(name)
	if !ok {
		return name
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if e, ok := r.apps[logical]; ok && e.cross != nil {
		return logical
	}
	return name
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppsByShard returns each shard's admitted apps (GR then BE, admission
// order), locking one shard at a time.
func (r *Router) AppsByShard(sp *obs.Span) [][]*core.PlacedApp {
	out := make([][]*core.PlacedApp, len(r.slots))
	for i, s := range r.slots {
		s.lock(sp)
		out[i] = append(s.ctl.GRApps(), s.ctl.BEApps()...)
		s.mu.Unlock()
	}
	return out
}

// Region returns region i's partition cell.
func (r *Router) Region(i int) *Region { return r.part.Regions[i] }

// ShardOf returns the shard owning the logical application name (for
// cross-region apps, the lower region). The second result is false when
// the name is unknown or its admission has not settled. Single-shard
// routers keep no registry; everything lives in shard 0.
func (r *Router) ShardOf(name string) (int, bool) {
	if len(r.slots) == 1 {
		return 0, true
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	e, ok := r.apps[name]
	if !ok || e.claimed {
		return 0, false
	}
	if e.cross != nil {
		return e.cross.a, true
	}
	return e.shard, true
}

// Stats is a point-in-time health view of the sharded control plane.
type Stats struct {
	Shards []ShardStats  `json:"shards"`
	Leases int           `json:"leases"`
	Border []BorderStats `json:"border,omitempty"`
}

// ShardStats is one region's population.
type ShardStats struct {
	Region   int `json:"region"`
	NCPs     int `json:"ncps"`
	Links    int `json:"links"`
	GRApps   int `json:"grApps"`
	BEApps   int `json:"beApps"`
	Admitted int `json:"admitted"`
	// SolverFlows/SolverNNZ expose the warm BE solver size (the
	// per-shard alloc rows).
	SolverFlows int `json:"solverFlows"`
	SolverNNZ   int `json:"solverNNZ"`
}

// BorderStats is one border link's lease occupancy.
type BorderStats struct {
	Link        string  `json:"link"`
	A           int     `json:"a"`
	B           int     `json:"b"`
	Capacity    float64 `json:"capacity"`
	Leased      float64 `json:"leased"`
	Utilization float64 `json:"utilization"`
}

// Stats gathers per-shard and border statistics, locking one shard at a
// time.
func (r *Router) Stats() Stats {
	st := Stats{}
	for i, s := range r.slots {
		s.mu.Lock()
		gr, be := len(s.ctl.GRApps()), len(s.ctl.BEApps())
		flows, nnz := s.ctl.SolverRows()
		s.mu.Unlock()
		st.Shards = append(st.Shards, ShardStats{
			Region:      i,
			NCPs:        s.region.View.Net.NumNCPs(),
			Links:       s.region.View.Net.NumLinks(),
			GRApps:      gr,
			BEApps:      be,
			Admitted:    gr + be,
			SolverFlows: flows,
			SolverNNZ:   nnz,
		})
	}
	r.borderMu.Lock()
	st.Leases = r.leases.Count()
	for i, bl := range r.part.Border {
		st.Border = append(st.Border, BorderStats{
			Link:        r.part.Parent.Link(bl.Link).Name,
			A:           bl.A,
			B:           bl.B,
			Capacity:    r.leases.Capacity(i),
			Leased:      r.leases.Leased(i),
			Utilization: r.leases.Utilization(i),
		})
	}
	r.borderMu.Unlock()
	return st
}
