package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sparcle/internal/core"
	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
	"sparcle/internal/workload"
)

func newCtlFactory(opts ...core.Option) func(sub *network.Network, region int) core.Control {
	return func(sub *network.Network, region int) core.Control {
		return core.New(sub, opts...)
	}
}

// TestSingleShardByteIdentical is the refactor's property test: a Router
// with one shard must be byte-for-byte the unsharded scheduler. The same
// randomized operation mix (submits, batches, removals, repairs,
// fluctuations) runs against both, and the exported snapshots — the
// complete observable state: placements, availabilities (γ), BE rates,
// pool, RNG draws — are compared as JSON bytes after every operation.
func TestSingleShardByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst, err := workload.Generate(workload.GenConfig{
		Shape:    workload.ShapeLinear,
		Topology: workload.TopoMesh,
		Regime:   workload.Balanced,
		NumNCPs:  6,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := inst.Net
	plain := core.New(net, core.WithRandSeed(1))
	router, err := New(net, 1, newCtlFactory(core.WithRandSeed(1)))
	if err != nil {
		t.Fatal(err)
	}

	check := func(op int) {
		t.Helper()
		a, err := plain.ExportSnapshot()
		if err != nil {
			t.Fatalf("op %d: plain snapshot: %v", op, err)
		}
		b, err := router.Shard(0).ExportSnapshot()
		if err != nil {
			t.Fatalf("op %d: shard snapshot: %v", op, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("op %d: single-shard state diverged from the unsharded scheduler\nplain: %s\nshard: %s", op, aj, bj)
		}
	}

	appCount := 0
	var live []string
	var liveGR []string
	genApp := func() core.App {
		appCount++
		shape := workload.ShapeLinear
		if rng.Intn(2) == 0 {
			shape = workload.ShapeDiamond
		}
		appInst, err := workload.Generate(workload.GenConfig{
			Shape:    shape,
			Topology: workload.TopoMesh,
			Regime:   workload.Balanced,
			NumNCPs:  6,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		app := core.App{
			Name:  fmt.Sprintf("app-%03d", appCount),
			Graph: appInst.Graph,
			Pins:  workload.PinRandomEnds(appInst.Graph, net, rng),
		}
		if rng.Intn(3) == 0 {
			app.QoS = core.QoS{Class: core.GuaranteedRate, MinRate: 0.1 + rng.Float64()*0.5, MinRateAvailability: 0.5, MaxPaths: 2}
		} else {
			app.QoS = core.QoS{Class: core.BestEffort, Priority: 0.5 + rng.Float64()*2, MaxPaths: 2}
		}
		return app
	}

	for op := 0; op < 120; op++ {
		switch r := rng.Intn(12); {
		case r < 5:
			app := genApp()
			pa, errA := plain.Submit(app)
			res, errB := router.Submit(app, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: submit diverged: %v vs %v", op, errA, errB)
			}
			if errA == nil {
				if pa.TotalRate() != res.App.TotalRate() || pa.Availability != res.App.Availability {
					t.Fatalf("op %d: placed app diverged", op)
				}
				live = append(live, app.Name)
				if app.QoS.Class == core.GuaranteedRate {
					liveGR = append(liveGR, app.Name)
				}
			}
		case r < 6:
			apps := []core.App{genApp(), genApp(), genApp()}
			resA, errA := plain.SubmitBatch(apps)
			resB, errB := router.SubmitBatch(apps, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: batch diverged: %v vs %v", op, errA, errB)
			}
			for i := range resA {
				if (resA[i].Err == nil) != (resB[i].Err == nil) {
					t.Fatalf("op %d: batch entry %d diverged: %v vs %v", op, i, resA[i].Err, resB[i].Err)
				}
				if resA[i].Err == nil {
					live = append(live, apps[i].Name)
					if apps[i].QoS.Class == core.GuaranteedRate {
						liveGR = append(liveGR, apps[i].Name)
					}
				}
			}
		case r < 8:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			name := live[i]
			live = append(live[:i], live[i+1:]...)
			for j, n := range liveGR {
				if n == name {
					liveGR = append(liveGR[:j], liveGR[j+1:]...)
					break
				}
			}
			errA := plain.Remove(name)
			errB := router.Remove(name, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: remove diverged: %v vs %v", op, errA, errB)
			}
		case r < 9:
			if len(liveGR) == 0 {
				continue
			}
			name := liveGR[rng.Intn(len(liveGR))]
			_, errA := plain.Repair(name)
			_, errB := router.Repair(name, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: repair diverged: %v vs %v", op, errA, errB)
			}
		default:
			scale := core.ElementScale{}
			for v := 0; v < net.NumNCPs(); v++ {
				if rng.Intn(4) == 0 {
					scale[placement.NCPElement(network.NCPID(v))] = 0.5 + rng.Float64()
				}
			}
			repA, errA := plain.ApplyFluctuation(scale)
			repB, errB := router.ApplyFluctuation(scale, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d: fluctuation diverged: %v vs %v", op, errA, errB)
			}
			if errA == nil && len(repA.ViolatedGR) != len(repB.ViolatedGR) {
				t.Fatalf("op %d: fluctuation report diverged", op)
			}
		}
		check(op)
	}
	if appCount < 40 {
		t.Fatalf("property test exercised only %d apps", appCount)
	}
}

// dumbbellNet builds two 2-NCP regions joined by one border link:
//
//	a0 -- a1 ==== b0 -- b1
//
// with the a1==b0 bridge carrying borderBW bandwidth.
func dumbbellNet(t *testing.T, borderBW float64) *network.Network {
	t.Helper()
	b := network.NewBuilder("dumbbell")
	caps := resource.Vector{resource.CPU: 1000}
	a0 := b.AddNCP("a0", caps, 0.01)
	a1 := b.AddNCP("a1", caps, 0.01)
	b0 := b.AddNCP("b0", caps, 0.01)
	b1 := b.AddNCP("b1", caps, 0.01)
	b.AddLink("la", a0, a1, 10000, 0.01)
	b.AddLink("bridge", a1, b0, borderBW, 0.02)
	b.AddLink("lb", b0, b1, 10000, 0.01)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// pipelineApp builds src -> mid -> dst with src pinned to from and dst
// pinned to to.
func pipelineApp(t *testing.T, name string, net *network.Network, from, to string, bits float64, qos core.QoS) core.App {
	t.Helper()
	b := taskgraph.NewBuilder(name + "-graph")
	src := b.AddCT("src", nil)
	mid := b.AddCT("mid", resource.Vector{resource.CPU: 1})
	dst := b.AddCT("dst", nil)
	b.AddTT("t0", src, mid, bits)
	b.AddTT("t1", mid, dst, bits)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fromID, ok := net.NCPIDByName(from)
	if !ok {
		t.Fatalf("no NCP %q", from)
	}
	toID, ok := net.NCPIDByName(to)
	if !ok {
		t.Fatalf("no NCP %q", to)
	}
	return core.App{
		Name:  name,
		Graph: g,
		Pins:  placement.Pins{src: fromID, dst: toID},
		QoS:   qos,
	}
}

func twoShardRouter(t *testing.T, net *network.Network) *Router {
	t.Helper()
	r, err := New(net, 2, newCtlFactory(core.WithRandSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumShards() != 2 {
		t.Fatalf("%d shards", r.NumShards())
	}
	return r
}

// TestCrossRegionAdmitRemove: an app pinned across the dumbbell is
// decomposed into two leased halves; removal releases the lease and
// both halves.
func TestCrossRegionAdmitRemove(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)

	app := pipelineApp(t, "cross", net, "a0", "b1", 10,
		core.QoS{Class: core.GuaranteedRate, MinRate: 1, MinRateAvailability: 0.5, MaxPaths: 1})
	res, err := r.Submit(app, nil)
	if err != nil {
		t.Fatalf("cross submit: %v", err)
	}
	if res.Cross == nil {
		t.Fatal("expected a cross-region result")
	}
	if res.Cross.BorderLink != "bridge" {
		t.Fatalf("leased %q, want bridge", res.Cross.BorderLink)
	}
	if res.Cross.Rate <= 0 {
		t.Fatalf("cross rate %v", res.Cross.Rate)
	}
	// One cut TT (mid sits on one side): the lease covers bits*rate.
	st := r.Stats()
	if st.Leases != 1 {
		t.Fatalf("leases = %d", st.Leases)
	}
	var bridge BorderStats
	for _, bs := range st.Border {
		if bs.Link == "bridge" {
			bridge = bs
		}
	}
	wantLease := res.Cross.Bits * res.Cross.Rate
	if diff := bridge.Leased - wantLease; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("bridge leased %v, want %v", bridge.Leased, wantLease)
	}
	// The halves live in their shards under suffixed names.
	if got := len(r.Shard(0).GRApps()) + len(r.Shard(1).GRApps()); got != 2 {
		t.Fatalf("halves admitted: %d", got)
	}
	// End-to-end availability accounts for both halves and the border.
	if res.App.Availability > res.Cross.HalfA.Availability ||
		res.App.Availability > res.Cross.HalfB.Availability {
		t.Fatal("combined availability exceeds a half's")
	}

	if err := r.Remove("cross", nil); err != nil {
		t.Fatalf("remove: %v", err)
	}
	st = r.Stats()
	if st.Leases != 0 {
		t.Fatalf("leases after remove = %d", st.Leases)
	}
	if got := len(r.Shard(0).GRApps()) + len(r.Shard(1).GRApps()); got != 0 {
		t.Fatalf("halves after remove: %d", got)
	}
	if err := r.Remove("cross", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

// TestCrossRegionLeaseCap: when the border link is the bottleneck, the
// admitted rate is exactly the lease headroom over the cut bits, and a
// second cross app competes for what remains.
func TestCrossRegionLeaseCap(t *testing.T) {
	net := dumbbellNet(t, 100) // bridge: 100 bits/s
	r := twoShardRouter(t, net)

	qos := core.QoS{Class: core.GuaranteedRate, MinRate: 0.1, MinRateAvailability: 0.5, MaxPaths: 1}
	res, err := r.Submit(pipelineApp(t, "c1", net, "a0", "b1", 10, qos), nil)
	if err != nil {
		t.Fatalf("c1: %v", err)
	}
	// Cut bits = 10, headroom = 100 → rate capped at 10.
	if res.Cross.Rate > 10+1e-9 {
		t.Fatalf("c1 rate %v exceeds lease cap 10", res.Cross.Rate)
	}
	if res.Cross.Rate < 10-1e-6 {
		t.Fatalf("c1 rate %v below the border bottleneck", res.Cross.Rate)
	}
	// The border is fully leased; the next cross app must be rejected.
	_, err = r.Submit(pipelineApp(t, "c2", net, "a0", "b1", 10, qos), nil)
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("c2 on a full border: %v", err)
	}
	// Releasing c1 frees the border for c2.
	if err := r.Remove("c1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(pipelineApp(t, "c2", net, "a0", "b1", 10, qos), nil); err != nil {
		t.Fatalf("c2 after release: %v", err)
	}
}

// TestCrossRegionBestEffort: BE apps admit across regions too (as capped
// reservations) and report the BE class at the router level.
func TestCrossRegionBestEffort(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)
	app := pipelineApp(t, "be-cross", net, "a0", "b1", 5,
		core.QoS{Class: core.BestEffort, Priority: 1, Availability: 0.5, MaxPaths: 1})
	res, err := r.Submit(app, nil)
	if err != nil {
		t.Fatalf("BE cross submit: %v", err)
	}
	if res.Cross == nil || res.Cross.Rate <= 0 {
		t.Fatal("BE cross app not leased")
	}
	if err := r.Remove("be-cross", nil); err != nil {
		t.Fatal(err)
	}
}

// TestIntraRegionIsolation: apps pinned within one region admit through
// their own shard only and never touch the lease table.
func TestIntraRegionIsolation(t *testing.T) {
	net := dumbbellNet(t, 1000)
	r := twoShardRouter(t, net)
	a := pipelineApp(t, "inA", net, "a0", "a1", 5,
		core.QoS{Class: core.GuaranteedRate, MinRate: 1, MinRateAvailability: 0.5, MaxPaths: 1})
	bApp := pipelineApp(t, "inB", net, "b0", "b1", 5,
		core.QoS{Class: core.BestEffort, Priority: 1, MaxPaths: 1})
	resA, err := r.Submit(a, nil)
	if err != nil {
		t.Fatalf("inA: %v", err)
	}
	resB, err := r.Submit(bApp, nil)
	if err != nil {
		t.Fatalf("inB: %v", err)
	}
	if resA.Cross != nil || resB.Cross != nil {
		t.Fatal("intra apps classified cross")
	}
	if resA.Shard == resB.Shard {
		t.Fatalf("both apps in shard %d", resA.Shard)
	}
	if r.Stats().Leases != 0 {
		t.Fatal("intra apps acquired leases")
	}
	// Duplicate logical names are rejected across shards.
	if _, err := r.Submit(a, nil); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("duplicate name: %v", err)
	}
	// Names that could collide with half names are rejected.
	bad := a
	bad.Name = "evil@0"
	if _, err := r.Submit(bad, nil); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("half-like name: %v", err)
	}
}

// TestCrossRegionFluctuation: degrading the border link below the leased
// bandwidth surfaces the cross app as violated; intra fluctuations route
// to their region.
func TestCrossRegionFluctuation(t *testing.T) {
	net := dumbbellNet(t, 100)
	r := twoShardRouter(t, net)
	qos := core.QoS{Class: core.GuaranteedRate, MinRate: 0.1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "c1", net, "a0", "b1", 10, qos), nil); err != nil {
		t.Fatal(err)
	}
	bridgeID := network.LinkID(-1)
	for l := 0; l < net.NumLinks(); l++ {
		if net.Link(network.LinkID(l)).Name == "bridge" {
			bridgeID = network.LinkID(l)
		}
	}
	rep, err := r.ApplyFluctuation(core.ElementScale{
		placement.LinkElement(net, bridgeID): 0.5,
	}, nil)
	if err != nil {
		t.Fatalf("fluctuation: %v", err)
	}
	found := false
	for _, v := range rep.ViolatedGR {
		if v == "c1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violated = %v, want c1", rep.ViolatedGR)
	}
	// Restoring nominal capacity clears the violation.
	rep, err = r.ApplyFluctuation(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ViolatedGR) != 0 {
		t.Fatalf("violated after restore = %v", rep.ViolatedGR)
	}
}

// TestCrossRegionRepair renegotiates the lease on repair.
func TestCrossRegionRepair(t *testing.T) {
	net := dumbbellNet(t, 100)
	r := twoShardRouter(t, net)
	qos := core.QoS{Class: core.GuaranteedRate, MinRate: 0.1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "c1", net, "a0", "b1", 10, qos), nil); err != nil {
		t.Fatal(err)
	}
	res, err := r.Repair("c1", nil)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Cross == nil || res.Cross.Rate <= 0 {
		t.Fatal("repair lost the cross placement")
	}
	if got := res.App.App.QoS.Class; got != core.GuaranteedRate {
		t.Fatalf("repaired logical view class = %v", got)
	}
	if r.Stats().Leases != 1 {
		t.Fatalf("leases after repair = %d", r.Stats().Leases)
	}
	if err := r.Remove("c1", nil); err != nil {
		t.Fatal(err)
	}
}

// TestCrossRepairRenegotiatesDegradedBorder: repair after a border-link
// degradation trims the lease to the link's current headroom when the
// smaller rate still satisfies the app, and withdraws with a rejection
// (not an internal error) when it cannot.
func TestCrossRepairRenegotiatesDegradedBorder(t *testing.T) {
	net := dumbbellNet(t, 100)
	r := twoShardRouter(t, net)
	bridgeID := network.LinkID(-1)
	for l := 0; l < net.NumLinks(); l++ {
		if net.Link(network.LinkID(l)).Name == "bridge" {
			bridgeID = network.LinkID(l)
		}
	}
	qos := core.QoS{Class: core.GuaranteedRate, MinRate: 0.1, MinRateAvailability: 0.5, MaxPaths: 1}
	if _, err := r.Submit(pipelineApp(t, "c1", net, "a0", "b1", 10, qos), nil); err != nil {
		t.Fatal(err)
	}
	// Half capacity: the renegotiated rate (bridge 50 / bits 10 = 5)
	// still clears MinRate, so repair shrinks the lease instead of
	// failing on the stale one.
	if _, err := r.ApplyFluctuation(core.ElementScale{
		placement.LinkElement(net, bridgeID): 0.5,
	}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := r.Repair("c1", nil)
	if err != nil {
		t.Fatalf("repair on degraded border: %v", err)
	}
	if got := res.Cross.Rate; got > 5+1e-6 || got <= 0 {
		t.Fatalf("renegotiated rate = %v, want (0, 5]", got)
	}
	// Near-dead border: headroom 0.1/10 = 0.01 < MinRate — the repair
	// must withdraw the app with a rejection, not an internal error.
	if _, err := r.ApplyFluctuation(core.ElementScale{
		placement.LinkElement(net, bridgeID): 0.001,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Repair("c1", nil); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("repair on dead border: %v (want ErrRejected)", err)
	}
	if _, err := r.Repair("c1", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("app should be withdrawn after failed cross repair: %v", err)
	}
}
