package simnet

import (
	"math/rand"
	"testing"
)

// TestEventHeapOrdering drives the hand-rolled heap against a reference
// sort: pops must come out in (at, seq) order regardless of push order.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h eventHeap
	const n = 2000
	for i := 0; i < n; i++ {
		// Duplicate timestamps exercise the seq tie-break.
		h.push(event{at: float64(rng.Intn(50)), seq: int64(i)})
	}
	prev := event{at: -1, seq: -1}
	for i := 0; i < n; i++ {
		ev := h.pop()
		if ev.at < prev.at || (ev.at == prev.at && ev.seq <= prev.seq) {
			t.Fatalf("pop %d out of order: got (at=%v seq=%d) after (at=%v seq=%d)",
				i, ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}

func TestEventHeapInit(t *testing.T) {
	h := eventHeap{{at: 5, seq: 0}, {at: 1, seq: 1}, {at: 3, seq: 2}, {at: 1, seq: 0}}
	h.init()
	want := []struct {
		at  float64
		seq int64
	}{{1, 0}, {1, 1}, {3, 2}, {5, 0}}
	for i, w := range want {
		ev := h.pop()
		if ev.at != w.at || ev.seq != w.seq {
			t.Fatalf("pop %d: got (at=%v seq=%d), want (at=%v seq=%d)", i, ev.at, ev.seq, w.at, w.seq)
		}
	}
}

// TestEventHeapSteadyStateAllocs pins the point of the typed heap: a
// steady-state push/pop cycle must not allocate (container/heap boxes every
// Push operand and Pop result into an interface{}).
func TestEventHeapSteadyStateAllocs(t *testing.T) {
	h := make(eventHeap, 0, 1024)
	for i := 0; i < 512; i++ {
		h.push(event{at: float64(i % 37), seq: int64(i)})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := h.pop()
		ev.seq += 512
		h.push(ev)
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkEventHeap(b *testing.B) {
	h := make(eventHeap, 0, 1024)
	for i := 0; i < 512; i++ {
		h.push(event{at: float64(i % 37), seq: int64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		ev.seq = int64(512 + i)
		h.push(ev)
	}
}
