// Package simnet is a discrete-event simulator that actually executes
// placed stream processing applications on a dispersed computing network.
// It stands in for the paper's physical testbed and Mininet emulation
// (§V.A): data units are emitted by source CTs at a configured input rate,
// flow through the application's task graph, queue FIFO at every NCP and
// link (the queueing network of §IV.A), and are counted at the result
// consumer.
//
// The simulator validates the analytical bottleneck rate — a placement run
// at an input rate below its bottleneck is stable and delivers the full
// rate; above it, queues grow and throughput saturates at the bottleneck —
// and provides the latency, utilization and energy measurements the
// experiments report. Elements can be given availability schedules to
// replay failures.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
)

// Config controls one simulation run.
type Config struct {
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// Warmup discards completions before this time (seconds) from the
	// throughput and latency statistics.
	Warmup float64
	// MaxEvents aborts runaway simulations (e.g. an input rate above the
	// bottleneck, whose queues grow without bound). 0 selects the default
	// of 20 million events; negative values are rejected by Run.
	MaxEvents int
	// RecordCompletions, when set, records every delivered data unit's
	// completion time in AppStats.CompletionTimes (within the measurement
	// window), so callers can compute windowed delivered rates — e.g. the
	// chaos experiments' delivered-availability measurement.
	RecordCompletions bool
}

func (c Config) validate() error {
	if c.Duration <= 0 {
		return errors.New("simnet: Duration must be > 0")
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("simnet: Warmup %v outside [0, Duration)", c.Warmup)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("simnet: MaxEvents %d must be >= 0 (0 selects the 20M default)", c.MaxEvents)
	}
	return nil
}

// Interval is a half-open time span [From, To) in simulated seconds.
type Interval struct {
	From, To float64
}

// Sim is a configured simulator instance. It is not safe for concurrent
// use; build one per run.
type Sim struct {
	net  *network.Network
	apps []*simApp
	down map[placement.Element][]Interval
}

type simApp struct {
	p    *placement.Placement
	rate float64
	// arrivals draws exponential inter-arrival times when non-nil
	// (Poisson input); deterministic spacing 1/rate otherwise.
	arrivals *rand.Rand
	// window > 0 switches the app to closed-loop (backpressure) input:
	// sources keep `window` data units outstanding, emitting the next
	// unit when one is delivered, instead of emitting at a fixed rate.
	window int
}

// New returns a simulator over net.
func New(net *network.Network) *Sim {
	return &Sim{net: net, down: map[placement.Element][]Interval{}}
}

// AddApp registers a placed application driven at the given input rate
// (data units per second at every source CT), with deterministic
// inter-arrival times 1/rate.
func (s *Sim) AddApp(p *placement.Placement, rate float64) error {
	return s.addApp(p, rate, nil)
}

// AddAppPoisson registers a placed application whose sources emit data
// units as a Poisson process of the given mean rate, drawing inter-arrival
// times from rng. Poisson input exposes the queueing behaviour near
// saturation that deterministic arrivals hide.
func (s *Sim) AddAppPoisson(p *placement.Placement, rate float64, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("simnet: AddAppPoisson needs a random source")
	}
	return s.addApp(p, rate, rng)
}

func (s *Sim) addApp(p *placement.Placement, rate float64, arrivals *rand.Rand) error {
	if !p.Complete() {
		return errors.New("simnet: placement incomplete")
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("simnet: invalid input rate %v", rate)
	}
	s.apps = append(s.apps, &simApp{p: p, rate: rate, arrivals: arrivals})
	return nil
}

// AddAppClosedLoop registers a placed application with backpressure
// (window) flow control instead of a fixed input rate: its sources keep
// `window` data units in flight and emit the next unit the moment one is
// delivered, the self-clocking discipline stream engines implement as
// backpressure. Throughput converges to the placement's bottleneck rate
// on its own (for a window large enough to cover the pipeline), which the
// paper's related-work discussion points to as the decentralized
// alternative to computing rates up front.
func (s *Sim) AddAppClosedLoop(p *placement.Placement, window int) error {
	if !p.Complete() {
		return errors.New("simnet: placement incomplete")
	}
	if window < 1 {
		return fmt.Errorf("simnet: window must be >= 1, got %d", window)
	}
	s.apps = append(s.apps, &simApp{p: p, rate: math.NaN(), window: window})
	return nil
}

// SetDowntime replays failure intervals for a network element: while down,
// the element stops serving (service is paused and resumed, jobs are not
// lost). Intervals must be disjoint and sorted.
func (s *Sim) SetDowntime(e placement.Element, intervals []Interval) error {
	prev := math.Inf(-1)
	for _, iv := range intervals {
		if iv.To <= iv.From || iv.From < prev {
			return fmt.Errorf("simnet: downtime intervals must be sorted and disjoint, got %+v", intervals)
		}
		prev = iv.To
	}
	s.down[e] = append([]Interval(nil), intervals...)
	return nil
}

// AppStats reports one application's measured behaviour.
type AppStats struct {
	// Completed is the number of data units delivered to the consumer
	// inside the measurement window.
	Completed int
	// Throughput is Completed divided by the measurement window length.
	Throughput float64
	// MeanLatency and P95Latency are end-to-end data unit latencies in
	// seconds (emission at the source to delivery at the consumer).
	MeanLatency, P95Latency float64
	// MaxQueueLen is the largest backlog observed at any element by this
	// app's jobs (a stability indicator).
	MaxQueueLen int
	// MeanInFlight is the time-averaged number of data units inside the
	// system (emitted but not yet delivered) over the whole horizon.
	// Together with Throughput and MeanLatency it lets callers check
	// Little's law (L = lambda * W).
	MeanInFlight float64
	// CompletionTimes holds the delivery time of every unit counted in
	// Completed, sorted ascending. Populated only when
	// Config.RecordCompletions is set.
	CompletionTimes []float64
}

// ElementStats reports per-element aggregates.
type ElementStats struct {
	// BusyTime is the total time the element spent serving, seconds.
	BusyTime float64
	// Utilization is BusyTime / Duration.
	Utilization float64
	// BitsCarried is the total traffic through a link (0 for NCPs).
	BitsCarried float64
}

// Report is the outcome of a run.
type Report struct {
	Config   Config
	Apps     []AppStats
	Elements map[placement.Element]ElementStats
}

// event kinds.
type eventKind int

const (
	evEmit eventKind = iota + 1 // a source produces a data unit
	evDone                      // an element finishes its current job
)

type event struct {
	at   float64
	seq  int64
	kind eventKind

	app  int
	unit int64
	ct   taskgraph.CTID // for evEmit: which source emits

	elem int // for evDone: element index
}

// eventHeap is a binary min-heap over (at, seq), hand-rolled instead of
// wrapping container/heap: the interface{} boxing in heap.Push/heap.Pop
// allocates on every event, and the event loop is the simulator's hot path.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	*h = s[:n]
	h.siftDown(0)
	return top
}

func (h *eventHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *eventHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			return
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// job is one unit of work at one element: a CT execution or a single-link
// hop of a TT transmission.
type job struct {
	app     int
	unit    int64
	service float64 // seconds of pure service demand

	isCT bool
	ct   taskgraph.CTID

	tt      taskgraph.TTID
	hopIdx  int // index into the TT's route
	bits    float64
	emitted float64 // emission time of the unit (latency accounting)
}

// server is the FIFO state of one element.
type server struct {
	busy  bool
	queue []job
	cur   job

	busyTime float64
	bits     float64
	maxQueue int
	down     []Interval
}

// Run executes the simulation.
func (s *Sim) Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxEvents := cfg.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 20_000_000
	}
	if len(s.apps) == 0 {
		return nil, errors.New("simnet: no applications added")
	}

	numElems := s.net.NumNCPs() + s.net.NumLinks()
	servers := make([]server, numElems)
	for e, ivs := range s.down {
		if int(e) < 0 || int(e) >= numElems {
			return nil, fmt.Errorf("simnet: downtime for unknown element %d", e)
		}
		servers[e].down = ivs
	}

	st := &runState{
		sim:         s,
		cfg:         cfg,
		servers:     servers,
		pending:     map[joinKey]int{},
		emitTimes:   map[unitKey]float64{},
		latencies:   make([][]float64, len(s.apps)),
		completed:   make([]int, len(s.apps)),
		completions: make([][]float64, len(s.apps)),
		maxQ:        make([]int, len(s.apps)),
		inFlight:    make([]int, len(s.apps)),
		flightT:     make([]float64, len(s.apps)),
		flightSum:   make([]float64, len(s.apps)),
		nextUnit:    make([]int64, len(s.apps)),
	}
	for ai, app := range s.apps {
		if app.window > 0 {
			st.nextUnit[ai] = int64(app.window)
		}
	}

	// Seed the first emission of every app (closed-loop apps start with
	// their whole window in flight).
	var h eventHeap
	for ai, app := range s.apps {
		first := int64(1)
		if app.window > 0 {
			first = int64(app.window)
		}
		for unit := int64(0); unit < first; unit++ {
			for _, src := range app.p.Graph.Sources() {
				h = append(h, event{at: 0, seq: st.nextSeq(), kind: evEmit, app: ai, unit: unit, ct: src})
			}
		}
	}
	h.init()

	events := 0
	for h.Len() > 0 {
		ev := h.pop()
		if ev.at > cfg.Duration {
			break
		}
		events++
		if events > maxEvents {
			return nil, fmt.Errorf("simnet: exceeded %d events (unstable input rate?)", maxEvents)
		}
		switch ev.kind {
		case evEmit:
			st.handleEmit(&h, ev)
		case evDone:
			st.handleDone(&h, ev)
		}
	}

	return st.report(), nil
}

type joinKey struct {
	app  int
	ct   taskgraph.CTID
	unit int64
}

type unitKey struct {
	app  int
	unit int64
}

type runState struct {
	sim *Sim
	cfg Config

	servers   []server
	pending   map[joinKey]int
	emitTimes map[unitKey]float64

	latencies [][]float64
	completed []int
	// completions records delivery times per app (events are processed in
	// time order, so each slice is sorted). Only when RecordCompletions.
	completions [][]float64
	maxQ        []int
	seq         int64

	// Little's-law accounting per app: time integral of the in-flight
	// population.
	inFlight  []int
	flightT   []float64
	flightSum []float64

	// nextUnit numbers the units a closed-loop app has yet to emit.
	nextUnit []int64
}

func (st *runState) nextSeq() int64 {
	st.seq++
	return st.seq
}

func (st *runState) handleEmit(h *eventHeap, ev event) {
	app := st.sim.apps[ev.app]
	key := unitKey{ev.app, ev.unit}
	if _, ok := st.emitTimes[key]; !ok {
		st.emitTimes[key] = ev.at
		st.noteFlight(ev.app, ev.at, +1)
	}
	// The source CT "executes" like any CT (usually zero service).
	st.enqueueCT(h, ev.at, ev.app, ev.ct, ev.unit)
	if app.window > 0 {
		return // closed-loop: the next unit is emitted on delivery
	}
	// Schedule this source's next emission: deterministic spacing, or an
	// exponential gap for Poisson input.
	gap := 1 / app.rate
	if app.arrivals != nil {
		gap = app.arrivals.ExpFloat64() / app.rate
	}
	next := ev.at + gap
	if next <= st.cfg.Duration {
		h.push(event{at: next, seq: st.nextSeq(), kind: evEmit, app: ev.app, unit: ev.unit + 1, ct: ev.ct})
	}
}

// enqueueCT queues the execution of ct for one data unit on its host.
func (st *runState) enqueueCT(h *eventHeap, now float64, appIdx int, ct taskgraph.CTID, unit int64) {
	app := st.sim.apps[appIdx]
	host := app.p.Host(ct)
	j := job{
		app:     appIdx,
		unit:    unit,
		isCT:    true,
		ct:      ct,
		service: ctServiceTime(app.p.Graph.CT(ct).Req, st.sim.net.NCP(host).Capacity),
		emitted: st.emitTimes[unitKey{appIdx, unit}],
	}
	st.offer(h, now, int(placement.NCPElement(host)), j)
}

// enqueueTTHop queues hop hopIdx of tt for one unit.
func (st *runState) enqueueTTHop(h *eventHeap, now float64, appIdx int, tt taskgraph.TTID, hopIdx int, unit int64) {
	app := st.sim.apps[appIdx]
	route, _ := app.p.Route(tt)
	if hopIdx >= len(route) {
		// Delivered: either empty (co-located) or past the last hop.
		st.deliver(h, now, appIdx, tt, unit)
		return
	}
	link := route[hopIdx]
	bw := st.sim.net.Link(link).Bandwidth
	bits := app.p.Graph.TT(tt).Bits
	service := math.Inf(1)
	if bw > 0 {
		service = bits / bw
	}
	j := job{
		app:     appIdx,
		unit:    unit,
		tt:      tt,
		hopIdx:  hopIdx,
		bits:    bits,
		service: service,
		emitted: st.emitTimes[unitKey{appIdx, unit}],
	}
	st.offer(h, now, int(placement.LinkElement(st.sim.net, link)), j)
}

// deliver hands a TT's data unit to its destination CT, releasing the CT
// once all of its inputs for that unit have arrived (fork/join barrier).
func (st *runState) deliver(h *eventHeap, now float64, appIdx int, tt taskgraph.TTID, unit int64) {
	app := st.sim.apps[appIdx]
	dst := app.p.Graph.TT(tt).To
	key := joinKey{appIdx, dst, unit}
	st.pending[key]++
	if st.pending[key] == len(app.p.Graph.InTTs(dst)) {
		delete(st.pending, key)
		st.enqueueCT(h, now, appIdx, dst, unit)
	}
}

// offer places a job on an element's FIFO, starting service if idle.
func (st *runState) offer(h *eventHeap, now float64, elem int, j job) {
	srv := &st.servers[elem]
	if srv.busy {
		srv.queue = append(srv.queue, j)
		if len(srv.queue) > srv.maxQueue {
			srv.maxQueue = len(srv.queue)
		}
		if len(srv.queue) > st.maxQ[j.app] {
			st.maxQ[j.app] = len(srv.queue)
		}
		return
	}
	st.startService(h, now, elem, j)
}

func (st *runState) startService(h *eventHeap, now float64, elem int, j job) {
	srv := &st.servers[elem]
	srv.busy = true
	srv.cur = j
	if math.IsInf(j.service, 1) {
		// Zero-capacity element: the job never finishes; the queue grows
		// behind it, which the throughput statistics then reflect.
		return
	}
	finish := finishTime(now, j.service, srv.down)
	srv.busyTime += j.service
	if !j.isCT {
		srv.bits += j.bits
	}
	h.push(event{at: finish, seq: st.nextSeq(), kind: evDone, app: j.app, elem: elem})
}

// finishTime adds service seconds of work starting at now, skipping the
// element's down intervals (preempt-resume semantics).
func finishTime(now, service float64, down []Interval) float64 {
	t := now
	remaining := service
	for _, iv := range down {
		if iv.To <= t {
			continue
		}
		if iv.From > t {
			span := iv.From - t
			if remaining <= span {
				return t + remaining
			}
			remaining -= span
		}
		// Paused through [max(t, iv.From), iv.To).
		t = iv.To
	}
	return t + remaining
}

func (st *runState) handleDone(h *eventHeap, ev event) {
	srv := &st.servers[ev.elem]
	j := srv.cur
	srv.busy = false
	// Advance the FIFO.
	if len(srv.queue) > 0 {
		next := srv.queue[0]
		srv.queue = srv.queue[1:]
		st.startService(h, ev.at, ev.elem, next)
	}
	app := st.sim.apps[j.app]
	if j.isCT {
		outs := app.p.Graph.OutTTs(j.ct)
		if len(outs) == 0 {
			// Sink: the unit is complete.
			st.complete(h, j.app, j.unit, ev.at)
			return
		}
		for _, tt := range outs {
			st.enqueueTTHop(h, ev.at, j.app, tt, 0, j.unit)
		}
		return
	}
	st.enqueueTTHop(h, ev.at, j.app, j.tt, j.hopIdx+1, j.unit)
}

// noteFlight integrates the in-flight population as it changes.
func (st *runState) noteFlight(appIdx int, at float64, delta int) {
	st.flightSum[appIdx] += float64(st.inFlight[appIdx]) * (at - st.flightT[appIdx])
	st.flightT[appIdx] = at
	st.inFlight[appIdx] += delta
}

func (st *runState) complete(h *eventHeap, appIdx int, unit int64, at float64) {
	key := unitKey{appIdx, unit}
	emitted, ok := st.emitTimes[key]
	if !ok {
		return
	}
	delete(st.emitTimes, key)
	st.noteFlight(appIdx, at, -1)
	// Closed-loop: a delivery releases the next emission.
	if app := st.sim.apps[appIdx]; app.window > 0 && at <= st.cfg.Duration {
		next := st.nextUnit[appIdx]
		st.nextUnit[appIdx]++
		for _, src := range app.p.Graph.Sources() {
			h.push(event{at: at, seq: st.nextSeq(), kind: evEmit, app: appIdx, unit: next, ct: src})
		}
	}
	if at < st.cfg.Warmup || at > st.cfg.Duration {
		return
	}
	st.completed[appIdx]++
	st.latencies[appIdx] = append(st.latencies[appIdx], at-emitted)
	if st.cfg.RecordCompletions {
		st.completions[appIdx] = append(st.completions[appIdx], at)
	}
}

func (st *runState) report() *Report {
	window := st.cfg.Duration - st.cfg.Warmup
	rep := &Report{
		Config:   st.cfg,
		Apps:     make([]AppStats, len(st.sim.apps)),
		Elements: map[placement.Element]ElementStats{},
	}
	for ai := range st.sim.apps {
		// Flush the in-flight integral to the horizon.
		st.noteFlight(ai, st.cfg.Duration, 0)
		lat := st.latencies[ai]
		stats := AppStats{
			Completed:       st.completed[ai],
			Throughput:      float64(st.completed[ai]) / window,
			MaxQueueLen:     st.maxQ[ai],
			MeanInFlight:    st.flightSum[ai] / st.cfg.Duration,
			CompletionTimes: st.completions[ai],
		}
		if len(lat) > 0 {
			sum := 0.0
			for _, l := range lat {
				sum += l
			}
			stats.MeanLatency = sum / float64(len(lat))
			sorted := append([]float64(nil), lat...)
			sort.Float64s(sorted)
			stats.P95Latency = sorted[int(math.Ceil(0.95*float64(len(sorted))))-1]
		}
		rep.Apps[ai] = stats
	}
	for e := range st.servers {
		srv := &st.servers[e]
		if srv.busyTime == 0 && srv.bits == 0 {
			continue
		}
		rep.Elements[placement.Element(e)] = ElementStats{
			BusyTime:    srv.busyTime,
			Utilization: srv.busyTime / st.cfg.Duration,
			BitsCarried: srv.bits,
		}
	}
	return rep
}

// ctServiceTime is the per-unit processing time of a CT on a host:
// max over resource kinds of requirement / capacity (§IV.A).
func ctServiceTime(req, cap resource.Vector) float64 {
	t := 0.0
	for k, a := range req {
		if a <= 0 {
			continue
		}
		c := cap[k]
		if c <= 0 {
			return math.Inf(1)
		}
		if v := a / c; v > t {
			t = v
		}
	}
	return t
}
