package simnet

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sparcle/internal/assign"
	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
)

// pipeline builds a 4-node line network and a 2-CT linear app placed by
// SPARCLE, returning the placement and its analytic bottleneck rate.
func pipeline(t *testing.T, cpu, bw float64) (*network.Network, *placement.Placement, float64) {
	t.Helper()
	b := network.NewBuilder("line")
	src := b.AddNCP("src", nil, 0)
	m1 := b.AddNCP("m1", resource.Vector{resource.CPU: cpu}, 0)
	m2 := b.AddNCP("m2", resource.Vector{resource.CPU: cpu}, 0)
	snk := b.AddNCP("snk", nil, 0)
	b.AddLink("l0", src, m1, bw, 0)
	b.AddLink("l1", m1, m2, bw, 0)
	b.AddLink("l2", m2, snk, bw, 0)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Linear("app",
		[]resource.Vector{{resource.CPU: 10}, {resource.CPU: 10}},
		[]float64{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	pins := placement.Pins{g.Sources()[0]: src, g.Sinks()[0]: snk}
	caps := net.BaseCapacities()
	p, err := assign.Sparcle{}.Assign(g, pins, net, caps)
	if err != nil {
		t.Fatal(err)
	}
	return net, p, p.Rate(caps)
}

func TestThroughputMatchesAnalyticRateWhenStable(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.8
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 500, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Apps[0].Throughput
	if math.Abs(got-rate) > 0.05*rate {
		t.Fatalf("throughput = %v, want ~%v (bottleneck %v)", got, rate, bottleneck)
	}
	// Stable system: queues stay small.
	if rep.Apps[0].MaxQueueLen > 5 {
		t.Fatalf("max queue = %d in a stable run", rep.Apps[0].MaxQueueLen)
	}
	if rep.Apps[0].MeanLatency <= 0 || rep.Apps[0].P95Latency < rep.Apps[0].MeanLatency {
		t.Fatalf("latencies inconsistent: mean %v p95 %v", rep.Apps[0].MeanLatency, rep.Apps[0].P95Latency)
	}
}

func TestThroughputSaturatesAtBottleneck(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.AddApp(p, bottleneck*3); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 500, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Apps[0].Throughput
	if math.Abs(got-bottleneck) > 0.1*bottleneck {
		t.Fatalf("saturated throughput = %v, want ~bottleneck %v", got, bottleneck)
	}
	// Overloaded system: some queue must have grown.
	if rep.Apps[0].MaxQueueLen < 10 {
		t.Fatalf("max queue = %d in an overloaded run", rep.Apps[0].MaxQueueLen)
	}
}

func TestUtilizationMatchesLoad(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck / 2
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 1000, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Each middle NCP hosts one CT with service time 10/100 = 0.1 s, so
	// utilization should be ~ rate * 0.1.
	for v := 1; v <= 2; v++ {
		e := placement.NCPElement(network.NCPID(v))
		stats, ok := rep.Elements[e]
		if !p.NCPLoad(network.NCPID(v)).IsZero() {
			if !ok {
				t.Fatalf("no stats for loaded NCP %d", v)
			}
			want := rate * 0.1
			if math.Abs(stats.Utilization-want) > 0.1*want {
				t.Fatalf("NCP %d utilization = %v, want ~%v", v, stats.Utilization, want)
			}
		}
	}
}

func TestDiamondForkJoin(t *testing.T) {
	// A diamond app: every delivered unit requires both branches, so
	// completions must match the source count exactly in a stable system.
	b := network.NewBuilder("mesh")
	n := make([]network.NCPID, 4)
	for i := range n {
		n[i] = b.AddNCP("n", resource.Vector{resource.CPU: 100}, 0)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddLink("l", n[i], n[j], 1e4, 0)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	reqs := []resource.Vector{
		{resource.CPU: 5}, {resource.CPU: 5}, // stage 1
		{resource.CPU: 5}, {resource.CPU: 5}, // stage 2
		{resource.CPU: 2}, // join
	}
	bits := []float64{10, 10, 10, 10, 10, 10, 5}
	g, err := taskgraph.Diamond("dia", 2, reqs, bits)
	if err != nil {
		t.Fatal(err)
	}
	pins := placement.Pins{g.Sources()[0]: n[0], g.Sinks()[0]: n[3]}
	caps := net.BaseCapacities()
	p, err := assign.Sparcle{}.Assign(g, pins, net, caps)
	if err != nil {
		t.Fatal(err)
	}
	rate := p.Rate(caps) * 0.5
	sim := New(net)
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 200, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Within the horizon, every emitted unit except the in-flight tail
	// must complete exactly once.
	emitted := int(200 * rate)
	if got := rep.Apps[0].Completed; got < emitted-10 || got > emitted+1 {
		t.Fatalf("completed %d of ~%d emitted", got, emitted)
	}
}

func TestTwoAppsShareAnElement(t *testing.T) {
	// Two identical apps on the same pipeline at a combined rate below
	// the bottleneck: both must receive their full input rate.
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.4
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddApp(p.Clone(), rate); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 500, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i, stats := range rep.Apps {
		if math.Abs(stats.Throughput-rate) > 0.05*rate {
			t.Fatalf("app %d throughput = %v, want ~%v", i, stats.Throughput, rate)
		}
	}
}

func TestDowntimePausesService(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.9
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	// Take a loaded NCP down for the first half of the horizon: nothing
	// completes while it is down, and the backlog can only drain at the
	// bottleneck rate afterwards, so overall throughput lands well below
	// the input rate (~ bottleneck/2 over the full window).
	var loaded network.NCPID = -1
	for v := 0; v < net.NumNCPs(); v++ {
		if !p.NCPLoad(network.NCPID(v)).IsZero() {
			loaded = network.NCPID(v)
			break
		}
	}
	if loaded < 0 {
		t.Fatal("no loaded NCP found")
	}
	if err := sim.SetDowntime(placement.NCPElement(loaded), []Interval{{From: 0, To: 500}}); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 1000, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Apps[0].Throughput
	if got < 0.3*rate || got > 0.7*rate {
		t.Fatalf("throughput with 50%% downtime = %v (input %v, bottleneck %v)", got, rate, bottleneck)
	}
}

func TestDowntimeValidation(t *testing.T) {
	net, _, _ := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.SetDowntime(placement.NCPElement(0), []Interval{{From: 5, To: 1}}); err == nil {
		t.Fatal("inverted interval must error")
	}
	if err := sim.SetDowntime(placement.NCPElement(0), []Interval{{0, 2}, {1, 3}}); err == nil {
		t.Fatal("overlapping intervals must error")
	}
}

func TestRunValidation(t *testing.T) {
	net, p, _ := pipeline(t, 100, 1000)
	sim := New(net)
	if _, err := sim.Run(Config{Duration: 10}); err == nil {
		t.Fatal("run without apps must error")
	}
	if err := sim.AddApp(p, -1); err == nil {
		t.Fatal("negative rate must error")
	}
	if err := sim.AddApp(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(Config{Duration: 0}); err == nil {
		t.Fatal("zero duration must error")
	}
	if _, err := sim.Run(Config{Duration: 10, Warmup: 20}); err == nil {
		t.Fatal("warmup beyond duration must error")
	}
	if _, err := sim.Run(Config{Duration: 1000, MaxEvents: 10}); err == nil {
		t.Fatal("event cap must abort")
	}
}

func TestIncompletePlacementRejected(t *testing.T) {
	net, p, _ := pipeline(t, 100, 1000)
	incomplete := placement.New(p.Graph, net)
	sim := New(net)
	if err := sim.AddApp(incomplete, 1); err == nil {
		t.Fatal("incomplete placement must be rejected")
	}
}

func TestFinishTime(t *testing.T) {
	down := []Interval{{From: 2, To: 4}, {From: 10, To: 11}}
	tests := []struct {
		now, service, want float64
	}{
		{0, 1, 1},   // finishes before downtime
		{0, 3, 5},   // 2s before pause, 1s after
		{3, 1, 5},   // starts inside a pause
		{5, 5, 10},  // completes exactly as the second pause begins
		{5, 6, 12},  // crosses the second pause
		{12, 2, 14}, // after all pauses
		{0, 0, 0},   // zero service
	}
	for _, tt := range tests {
		if got := finishTime(tt.now, tt.service, down); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("finishTime(%v, %v) = %v, want %v", tt.now, tt.service, got, tt.want)
		}
	}
}

func TestCTServiceTime(t *testing.T) {
	if got := ctServiceTime(resource.Vector{resource.CPU: 10}, resource.Vector{resource.CPU: 100}); got != 0.1 {
		t.Fatalf("got %v", got)
	}
	if got := ctServiceTime(nil, resource.Vector{resource.CPU: 100}); got != 0 {
		t.Fatalf("zero req: got %v", got)
	}
	if got := ctServiceTime(resource.Vector{resource.CPU: 10}, nil); !math.IsInf(got, 1) {
		t.Fatalf("zero cap: got %v", got)
	}
	// Multi-resource: the max binds.
	got := ctServiceTime(
		resource.Vector{resource.CPU: 10, resource.Memory: 50},
		resource.Vector{resource.CPU: 100, resource.Memory: 100})
	if got != 0.5 {
		t.Fatalf("got %v, want 0.5", got)
	}
}

func TestPoissonArrivalsDeliverMeanRate(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.5
	if err := sim.AddAppPoisson(p, rate, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 2000, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Apps[0].Throughput
	if math.Abs(got-rate) > 0.1*rate {
		t.Fatalf("Poisson throughput = %v, want ~%v", got, rate)
	}
	// Poisson input must queue more than deterministic input at the same
	// load.
	det := New(net)
	if err := det.AddApp(p.Clone(), rate); err != nil {
		t.Fatal(err)
	}
	detRep, err := det.Run(Config{Duration: 2000, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Apps[0].P95Latency <= detRep.Apps[0].P95Latency {
		t.Fatalf("Poisson p95 %v not above deterministic %v",
			rep.Apps[0].P95Latency, detRep.Apps[0].P95Latency)
	}
}

func TestPoissonNeedsRand(t *testing.T) {
	net, p, _ := pipeline(t, 100, 1000)
	if err := New(net).AddAppPoisson(p, 1, nil); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = lambda * W must hold for the time-averaged in-flight population
	// under Poisson input at moderate load.
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.7
	if err := sim.AddAppPoisson(p, rate, rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 5000, Warmup: 500})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Apps[0]
	if st.MeanInFlight <= 0 {
		t.Fatalf("MeanInFlight = %v", st.MeanInFlight)
	}
	want := st.Throughput * st.MeanLatency
	if math.Abs(st.MeanInFlight-want)/want > 0.1 {
		t.Fatalf("Little's law violated: L = %v, lambda*W = %v", st.MeanInFlight, want)
	}
}

func TestClosedLoopConvergesToBottleneck(t *testing.T) {
	// With backpressure flow control, the source is never told the
	// bottleneck rate, yet throughput self-clocks to it once the window
	// covers the pipeline.
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.AddAppClosedLoop(p, 8); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 1000, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Apps[0].Throughput
	if math.Abs(got-bottleneck) > 0.05*bottleneck {
		t.Fatalf("closed-loop throughput = %v, want ~bottleneck %v", got, bottleneck)
	}
	// In-flight population stays bounded by the window (per source).
	if rep.Apps[0].MeanInFlight > 8+1e-9 {
		t.Fatalf("mean in flight %v exceeds window", rep.Apps[0].MeanInFlight)
	}
}

func TestClosedLoopSmallWindowUnderutilizes(t *testing.T) {
	// A window of 1 serializes the pipeline: throughput = 1/RTT, well
	// below the bottleneck rate of a 5-stage pipeline.
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.AddAppClosedLoop(p, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 1000, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Apps[0].Throughput; got >= 0.9*bottleneck {
		t.Fatalf("window-1 throughput = %v, bottleneck %v; expected underutilization", got, bottleneck)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	net, p, _ := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.AddAppClosedLoop(p, 0); err == nil {
		t.Fatal("window 0 must error")
	}
	incomplete := placement.New(p.Graph, net)
	if err := sim.AddAppClosedLoop(incomplete, 4); err == nil {
		t.Fatal("incomplete placement must error")
	}
}

func TestNegativeMaxEventsRejected(t *testing.T) {
	net, p, _ := pipeline(t, 100, 1000)
	sim := New(net)
	if err := sim.AddApp(p, 1); err != nil {
		t.Fatal(err)
	}
	_, err := sim.Run(Config{Duration: 10, MaxEvents: -1})
	if err == nil {
		t.Fatal("negative MaxEvents must be rejected")
	}
	if !strings.Contains(err.Error(), "MaxEvents") {
		t.Fatalf("error %q should name MaxEvents", err)
	}
	// Zero still selects the documented 20M default, i.e. runs fine.
	if _, err := sim.Run(Config{Duration: 10, MaxEvents: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCompletions(t *testing.T) {
	net, p, bottleneck := pipeline(t, 100, 1000)
	sim := New(net)
	rate := bottleneck * 0.5
	if err := sim.AddApp(p, rate); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(Config{Duration: 100, Warmup: 10, RecordCompletions: true})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Apps[0]
	if len(st.CompletionTimes) != st.Completed {
		t.Fatalf("recorded %d completion times for %d completions", len(st.CompletionTimes), st.Completed)
	}
	if st.Completed == 0 {
		t.Fatal("expected completions")
	}
	last := 10.0 // warmup boundary: earlier completions are excluded
	for _, ct := range st.CompletionTimes {
		if ct < last-1e-12 {
			t.Fatalf("completion times not sorted or inside warmup: %v after %v", ct, last)
		}
		last = ct
	}
	if last > 100+1e-12 {
		t.Fatalf("completion past horizon: %v", last)
	}

	// Off by default: no allocation.
	rep, err = sim.Run(Config{Duration: 100, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Apps[0].CompletionTimes != nil {
		t.Fatal("CompletionTimes must stay nil without RecordCompletions")
	}
}
