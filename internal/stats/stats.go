// Package stats provides the small statistical toolkit the experiment
// harness uses: means, percentiles, and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. It copies and sorts the
// input. An empty slice yields NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF: P(X <= Value) = Prob.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// CDF returns the empirical CDF of xs as one point per sample (sorted by
// value). The input is not modified.
func CDF(xs []float64) []CDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Prob: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFAt returns the empirical probability P(X <= v).
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary bundles the headline statistics of a sample.
type Summary struct {
	N             int
	Mean          float64
	P25, P50, P75 float64
	Min, Max      float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs)}
	if len(xs) == 0 {
		s.P25, s.P50, s.P75 = math.NaN(), math.NaN(), math.NaN()
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	s.P25 = Percentile(xs, 25)
	s.P50 = Percentile(xs, 50)
	s.P75 = Percentile(xs, 75)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p25=%.4g p50=%.4g p75=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.P25, s.P50, s.P75, s.Min, s.Max)
}
