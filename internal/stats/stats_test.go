package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile sorted its input")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile must be NaN")
	}
	// Clamping.
	if got := Percentile(xs, -5); got != 1 {
		t.Fatalf("clamped low = %v", got)
	}
	if got := Percentile(xs, 150); got != 4 {
		t.Fatalf("clamped high = %v", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].Prob-1.0/3) > 1e-12 {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Prob != 1 {
		t.Fatalf("pts[2] = %+v", pts[2])
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt = %v", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Fatal("empty CDFAt must be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.P50 != 2.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.P50) {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCDFIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		pts := CDF(xs)
		prevV, prevP := math.Inf(-1), 0.0
		for _, pt := range pts {
			if pt.Value < prevV || pt.Prob < prevP || pt.Prob > 1 {
				return false
			}
			prevV, prevP = pt.Value, pt.Prob
		}
		return pts[len(pts)-1].Prob == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
