package taskgraph

import (
	"fmt"
	"strings"
)

// DOT renders the task graph as a Graphviz digraph: CTs as nodes labeled
// with their resource requirements, TTs as edges labeled with their
// per-unit bits. Output is deterministic.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph taskgraph {\n")
	fmt.Fprintf(&b, "  label=%q;\n", g.name)
	b.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for ct := 0; ct < g.NumCTs(); ct++ {
		c := g.CT(CTID(ct))
		label := c.Name
		if !c.Req.IsZero() {
			label += "\\n" + c.Req.String()
		}
		fmt.Fprintf(&b, "  ct%d [label=%q];\n", ct, label)
	}
	for tt := 0; tt < g.NumTTs(); tt++ {
		e := g.TT(TTID(tt))
		fmt.Fprintf(&b, "  ct%d -> ct%d [label=%q];\n", e.From, e.To,
			fmt.Sprintf("%s (%g)", e.Name, e.Bits))
	}
	b.WriteString("}\n")
	return b.String()
}
