package taskgraph

import (
	"fmt"
	"math/rand"

	"sparcle/internal/resource"
)

// RandomConfig parameterizes RandomLayered.
type RandomConfig struct {
	// Layers is the number of processing layers between the source and
	// the consumer (>= 1).
	Layers int
	// MinWidth and MaxWidth bound the CTs per layer.
	MinWidth, MaxWidth int
	// EdgeProb is the probability of a TT between a CT and each CT of
	// the next layer beyond the one guaranteeing connectivity.
	EdgeProb float64
	// CTReq draws one CT requirement vector.
	CTReq func(*rand.Rand) resource.Vector
	// TTBits draws one TT size.
	TTBits func(*rand.Rand) float64
}

func (c RandomConfig) validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("taskgraph: RandomLayered needs Layers >= 1, got %d", c.Layers)
	}
	if c.MinWidth < 1 || c.MaxWidth < c.MinWidth {
		return fmt.Errorf("taskgraph: RandomLayered widths [%d, %d] invalid", c.MinWidth, c.MaxWidth)
	}
	if c.EdgeProb < 0 || c.EdgeProb > 1 {
		return fmt.Errorf("taskgraph: RandomLayered EdgeProb %v outside [0, 1]", c.EdgeProb)
	}
	if c.CTReq == nil || c.TTBits == nil {
		return fmt.Errorf("taskgraph: RandomLayered needs CTReq and TTBits generators")
	}
	return nil
}

// RandomLayered generates a random layered DAG: one source fans out to the
// first processing layer, each CT feeds at least one CT of the next layer
// (plus extra edges with probability EdgeProb), every CT is reachable from
// the source and reaches the consumer, and the final layer merges into the
// consumer. Layered DAGs cover the "multiple smaller computation tasks
// with different resource requirements and dependencies" shape the paper
// models (§I) beyond the two fixed graphs of Fig. 7.
func RandomLayered(name string, cfg RandomConfig, rng *rand.Rand) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(name)
	src := b.AddCT("source", nil)
	layers := make([][]CTID, cfg.Layers)
	for li := range layers {
		width := cfg.MinWidth + rng.Intn(cfg.MaxWidth-cfg.MinWidth+1)
		layers[li] = make([]CTID, width)
		for wi := range layers[li] {
			layers[li][wi] = b.AddCT(fmt.Sprintf("l%d-%d", li+1, wi+1), cfg.CTReq(rng))
		}
	}
	sink := b.AddCT("consumer", nil)

	tt := 0
	addTT := func(from, to CTID) {
		b.AddTT(fmt.Sprintf("tt%d", tt), from, to, cfg.TTBits(rng))
		tt++
	}
	// Source feeds every CT of the first layer.
	for _, ct := range layers[0] {
		addTT(src, ct)
	}
	// Between consecutive layers: every upstream CT gets at least one
	// successor, every downstream CT at least one predecessor, plus
	// random extras.
	for li := 0; li+1 < len(layers); li++ {
		up, down := layers[li], layers[li+1]
		hasPred := make([]bool, len(down))
		for _, u := range up {
			picked := rng.Intn(len(down))
			addTT(u, down[picked])
			hasPred[picked] = true
			for di, d := range down {
				if di != picked && rng.Float64() < cfg.EdgeProb {
					addTT(u, d)
					hasPred[di] = true
				}
			}
		}
		for di, ok := range hasPred {
			if !ok {
				addTT(up[rng.Intn(len(up))], down[di])
			}
		}
	}
	// Final layer merges into the consumer.
	for _, ct := range layers[len(layers)-1] {
		addTT(ct, sink)
	}
	return b.Build()
}
