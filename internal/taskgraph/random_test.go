package taskgraph

import (
	"math/rand"
	"testing"

	"sparcle/internal/resource"
)

func randomCfg() RandomConfig {
	return RandomConfig{
		Layers:   3,
		MinWidth: 1,
		MaxWidth: 4,
		EdgeProb: 0.3,
		CTReq: func(r *rand.Rand) resource.Vector {
			return resource.Vector{resource.CPU: 1 + r.Float64()*10}
		},
		TTBits: func(r *rand.Rand) float64 { return 1 + r.Float64()*10 },
	}
}

func TestRandomLayeredStructure(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomLayered("rand", randomCfg(), rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
			t.Fatalf("seed %d: %d sources, %d sinks", seed, len(g.Sources()), len(g.Sinks()))
		}
		src, snk := g.Sources()[0], g.Sinks()[0]
		// Every processing CT is reachable from the source and reaches
		// the consumer (so a placement always carries every task).
		for ct := 0; ct < g.NumCTs(); ct++ {
			id := CTID(ct)
			if id == src || id == snk {
				continue
			}
			if !g.Reachable(src, id) {
				t.Fatalf("seed %d: CT %d unreachable from source", seed, ct)
			}
			if !g.Reachable(id, snk) {
				t.Fatalf("seed %d: CT %d does not reach consumer", seed, ct)
			}
		}
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a, err := RandomLayered("r", randomCfg(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLayered("r", randomCfg(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCTs() != b.NumCTs() || a.NumTTs() != b.NumTTs() {
		t.Fatal("same seed must generate identical graphs")
	}
	for tt := 0; tt < a.NumTTs(); tt++ {
		if a.TT(TTID(tt)).Bits != b.TT(TTID(tt)).Bits {
			t.Fatal("TT bits differ across same-seed runs")
		}
	}
}

func TestRandomLayeredValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := randomCfg()
	bad.Layers = 0
	if _, err := RandomLayered("r", bad, rng); err == nil {
		t.Fatal("zero layers must error")
	}
	bad = randomCfg()
	bad.MinWidth = 3
	bad.MaxWidth = 2
	if _, err := RandomLayered("r", bad, rng); err == nil {
		t.Fatal("inverted widths must error")
	}
	bad = randomCfg()
	bad.EdgeProb = 2
	if _, err := RandomLayered("r", bad, rng); err == nil {
		t.Fatal("bad edge prob must error")
	}
	bad = randomCfg()
	bad.CTReq = nil
	if _, err := RandomLayered("r", bad, rng); err == nil {
		t.Fatal("missing generators must error")
	}
}
