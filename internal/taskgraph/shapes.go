package taskgraph

import (
	"fmt"

	"sparcle/internal/resource"
)

// Linear builds the linear task graph of Fig. 7(a): a data source, n
// processing CTs in a chain, and a result consumer, with a TT between each
// consecutive pair. ctReqs must have length n (requirements of the
// processing CTs, source and sink consume nothing) and ttBits length n+1
// (bits of the chain's TTs, source->CT1 first, CTn->sink last).
func Linear(name string, ctReqs []resource.Vector, ttBits []float64) (*Graph, error) {
	if len(ttBits) != len(ctReqs)+1 {
		return nil, fmt.Errorf("taskgraph: Linear %q: need %d TT bit values, got %d", name, len(ctReqs)+1, len(ttBits))
	}
	b := NewBuilder(name)
	prev := b.AddCT("source", nil)
	for i, req := range ctReqs {
		ct := b.AddCT(fmt.Sprintf("ct%d", i+1), req)
		b.AddTT(fmt.Sprintf("tt%d", i+1), prev, ct, ttBits[i])
		prev = ct
	}
	sink := b.AddCT("consumer", nil)
	b.AddTT(fmt.Sprintf("tt%d", len(ttBits)), prev, sink, ttBits[len(ttBits)-1])
	return b.Build()
}

// Diamond builds the diamond task graph of Fig. 7(b): a source fans out to
// `width` parallel first-stage CTs, each feeding a matching second-stage CT,
// all of which merge into a join CT that feeds the consumer. ctReqs must
// have length 2*width+1 (first stage, then second stage, then the join CT)
// and ttBits length 3*width+1 (source fan-out TTs, stage-1->stage-2 TTs,
// stage-2->join TTs, join->consumer TT).
func Diamond(name string, width int, ctReqs []resource.Vector, ttBits []float64) (*Graph, error) {
	if len(ctReqs) != 2*width+1 {
		return nil, fmt.Errorf("taskgraph: Diamond %q: need %d CT requirements, got %d", name, 2*width+1, len(ctReqs))
	}
	if len(ttBits) != 3*width+1 {
		return nil, fmt.Errorf("taskgraph: Diamond %q: need %d TT bit values, got %d", name, 3*width+1, len(ttBits))
	}
	b := NewBuilder(name)
	src := b.AddCT("source", nil)
	stage1 := make([]CTID, width)
	stage2 := make([]CTID, width)
	for i := 0; i < width; i++ {
		stage1[i] = b.AddCT(fmt.Sprintf("s1-%d", i+1), ctReqs[i])
		b.AddTT(fmt.Sprintf("fanout%d", i+1), src, stage1[i], ttBits[i])
	}
	for i := 0; i < width; i++ {
		stage2[i] = b.AddCT(fmt.Sprintf("s2-%d", i+1), ctReqs[width+i])
		b.AddTT(fmt.Sprintf("mid%d", i+1), stage1[i], stage2[i], ttBits[width+i])
	}
	join := b.AddCT("join", ctReqs[2*width])
	for i := 0; i < width; i++ {
		b.AddTT(fmt.Sprintf("merge%d", i+1), stage2[i], join, ttBits[2*width+i])
	}
	sink := b.AddCT("consumer", nil)
	b.AddTT("deliver", join, sink, ttBits[3*width])
	return b.Build()
}
