// Package taskgraph models a stream processing application as a directed
// acyclic graph of computation tasks (CTs, vertices) connected by transport
// tasks (TTs, edges), following §III.A of the SPARCLE paper.
//
// Every CT carries a resource requirement vector: the amount of each
// resource needed to process one data unit (e.g. CPU megacycles per image).
// Every TT carries the number of bits moved per data unit between its two
// endpoint CTs. Source CTs (no incoming TTs) model data sources such as
// cameras; sink CTs (no outgoing TTs) model result consumers. Both usually
// have zero resource requirements and are pinned to fixed hosts by the
// scheduler.
package taskgraph

import (
	"errors"
	"fmt"
	"math"

	"sparcle/internal/graph"
	"sparcle/internal/resource"
)

// CTID identifies a computation task within one Graph (a dense index).
type CTID int

// TTID identifies a transport task within one Graph (a dense index).
type TTID int

// CT is a computation task: one processing step of the application.
type CT struct {
	Name string
	// Req holds the resources needed to process a single data unit.
	Req resource.Vector
}

// TT is a transport task: the data moved between two consecutive CTs for
// each data unit.
type TT struct {
	Name string
	From CTID
	To   CTID
	// Bits is the amount of data transported per data unit, in the same
	// unit as link bandwidth (so Bits/Bandwidth is seconds per data unit).
	Bits float64
}

// Graph is an immutable, validated application task graph.
type Graph struct {
	name string
	cts  []CT
	tts  []TT

	out [][]TTID // outgoing TTs per CT
	in  [][]TTID // incoming TTs per CT

	sources []CTID
	sinks   []CTID
	topo    []CTID

	// desc[i] is the set of CTs strictly reachable from i following TTs.
	desc []graph.Bitset
	// minTT[i][j] is the TT with the smallest Bits among the TTs lying on
	// directed paths between i and j (in either direction); -1 if i and j
	// are not connected by any directed path. See Algorithm 2 line 12.
	minTT [][]TTID
}

// Builder incrementally constructs a Graph.
type Builder struct {
	name string
	cts  []CT
	tts  []TT
	err  error
}

// NewBuilder returns a Builder for an application with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddCT appends a computation task and returns its id. The requirement
// vector is cloned; a nil requirement means the CT consumes nothing (typical
// for data sources and result consumers).
func (b *Builder) AddCT(name string, req resource.Vector) CTID {
	b.cts = append(b.cts, CT{Name: name, Req: req.Clone()})
	return CTID(len(b.cts) - 1)
}

// AddTT appends a transport task carrying bits per data unit from CT `from`
// to CT `to` and returns its id. Errors (bad endpoints, negative bits) are
// deferred to Build.
func (b *Builder) AddTT(name string, from, to CTID, bits float64) TTID {
	id := TTID(len(b.tts))
	if from < 0 || int(from) >= len(b.cts) || to < 0 || int(to) >= len(b.cts) {
		b.setErr(fmt.Errorf("taskgraph: TT %q references undefined CT (%d -> %d)", name, from, to))
	}
	if from == to {
		b.setErr(fmt.Errorf("taskgraph: TT %q is a self-loop on CT %d", name, from))
	}
	if bits < 0 || math.IsNaN(bits) || math.IsInf(bits, 0) {
		b.setErr(fmt.Errorf("taskgraph: TT %q has invalid bits %v", name, bits))
	}
	b.tts = append(b.tts, TT{Name: name, From: from, To: to, Bits: bits})
	return id
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates the graph and freezes it. It fails if the graph is empty,
// has invalid tasks, is not acyclic, or has a CT that is neither a source
// nor reachable from one.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.cts) == 0 {
		return nil, errors.New("taskgraph: graph has no computation tasks")
	}
	for i, ct := range b.cts {
		if !ct.Req.NonNegative() {
			return nil, fmt.Errorf("taskgraph: CT %q (%d) has negative resource requirement %v", ct.Name, i, ct.Req)
		}
	}
	g := &Graph{
		name: b.name,
		cts:  append([]CT(nil), b.cts...),
		tts:  append([]TT(nil), b.tts...),
	}
	n := len(g.cts)
	g.out = make([][]TTID, n)
	g.in = make([][]TTID, n)
	adj := make([][]int, n)
	for id, tt := range g.tts {
		g.out[tt.From] = append(g.out[tt.From], TTID(id))
		g.in[tt.To] = append(g.in[tt.To], TTID(id))
		adj[tt.From] = append(adj[tt.From], int(tt.To))
	}
	order, err := graph.TopoSort(adj)
	if err != nil {
		return nil, fmt.Errorf("taskgraph: %q: %w", b.name, err)
	}
	g.topo = make([]CTID, n)
	for i, v := range order {
		g.topo[i] = CTID(v)
	}
	for i := 0; i < n; i++ {
		if len(g.in[i]) == 0 {
			g.sources = append(g.sources, CTID(i))
		}
		if len(g.out[i]) == 0 {
			g.sinks = append(g.sinks, CTID(i))
		}
	}
	g.desc, err = graph.Reachability(adj)
	if err != nil {
		return nil, fmt.Errorf("taskgraph: %q: %w", b.name, err)
	}
	g.buildMinTT()
	return g, nil
}

// buildMinTT computes, for every ordered reachable pair (i, j), the TT with
// minimum Bits among TTs on directed i->j paths. A TT (u -> v) lies on some
// i->j path iff u is i or a descendant of i, and j is v or a descendant
// of v.
func (g *Graph) buildMinTT() {
	n := len(g.cts)
	g.minTT = make([][]TTID, n)
	for i := range g.minTT {
		g.minTT[i] = make([]TTID, n)
		for j := range g.minTT[i] {
			g.minTT[i][j] = -1
		}
	}
	onPath := func(i, u CTID) bool { return i == u || g.desc[i].Has(int(u)) }
	for id, tt := range g.tts {
		for i := CTID(0); i < CTID(n); i++ {
			if !onPath(i, tt.From) {
				continue
			}
			for j := CTID(0); j < CTID(n); j++ {
				if i == j || !onPath(tt.To, j) {
					continue
				}
				cur := g.minTT[i][j]
				if cur < 0 || tt.Bits < g.tts[cur].Bits {
					g.minTT[i][j] = TTID(id)
				}
			}
		}
	}
}

// Name returns the application name.
func (g *Graph) Name() string { return g.name }

// NumCTs returns the number of computation tasks.
func (g *Graph) NumCTs() int { return len(g.cts) }

// NumTTs returns the number of transport tasks.
func (g *Graph) NumTTs() int { return len(g.tts) }

// CT returns the computation task with the given id.
func (g *Graph) CT(id CTID) CT { return g.cts[id] }

// TT returns the transport task with the given id.
func (g *Graph) TT(id TTID) TT { return g.tts[id] }

// Sources returns the CTs with no incoming TTs (data sources).
func (g *Graph) Sources() []CTID { return append([]CTID(nil), g.sources...) }

// Sinks returns the CTs with no outgoing TTs (result consumers).
func (g *Graph) Sinks() []CTID { return append([]CTID(nil), g.sinks...) }

// TopoOrder returns the CTs in a topological order.
func (g *Graph) TopoOrder() []CTID { return append([]CTID(nil), g.topo...) }

// OutTTs returns the outgoing transport tasks of ct.
func (g *Graph) OutTTs(ct CTID) []TTID { return g.out[ct] }

// InTTs returns the incoming transport tasks of ct.
func (g *Graph) InTTs(ct CTID) []TTID { return g.in[ct] }

// AdjacentTTs returns all TTs incident to ct (incoming and outgoing).
func (g *Graph) AdjacentTTs(ct CTID) []TTID {
	out := make([]TTID, 0, len(g.in[ct])+len(g.out[ct]))
	out = append(out, g.in[ct]...)
	out = append(out, g.out[ct]...)
	return out
}

// Reachable reports whether there is a directed path between i and j in
// either direction (i is an ancestor or a descendant of j). This is the
// reachability notion ν used by Algorithm 2's ranking.
func (g *Graph) Reachable(i, j CTID) bool {
	if i == j {
		return false
	}
	return g.desc[i].Has(int(j)) || g.desc[j].Has(int(i))
}

// MinBitsTTBetween returns the TT with the smallest Bits among the TTs on
// directed paths between i and j (in whichever direction they are
// connected), and false if the CTs are not connected. For directly adjacent
// CTs with a single connecting TT this is exactly that TT.
func (g *Graph) MinBitsTTBetween(i, j CTID) (TTID, bool) {
	if id := g.minTT[i][j]; id >= 0 {
		return id, true
	}
	if id := g.minTT[j][i]; id >= 0 {
		return id, true
	}
	return -1, false
}

// TotalReq returns the sum of all CT requirement vectors: the total
// computation consumed per data unit if every CT ran once per unit.
func (g *Graph) TotalReq() resource.Vector {
	total := resource.Vector{}
	for _, ct := range g.cts {
		total.Add(ct.Req)
	}
	return total
}

// TotalBits returns the sum of Bits over all TTs.
func (g *Graph) TotalBits() float64 {
	total := 0.0
	for _, tt := range g.tts {
		total += tt.Bits
	}
	return total
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("taskgraph %q (%d CTs, %d TTs)", g.name, len(g.cts), len(g.tts))
}
