package taskgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sparcle/internal/resource"
)

// buildExample returns the Fig. 1 multiple-viewpoint object classification
// graph: two camera sources feeding detection, then classification, then a
// consumer.
func buildExample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("fig1")
	cam1 := b.AddCT("camera1", nil)
	cam2 := b.AddCT("camera2", nil)
	det := b.AddCT("detect", resource.Vector{resource.CPU: 100})
	cls := b.AddCT("classify", resource.Vector{resource.CPU: 50})
	sink := b.AddCT("consumer", nil)
	b.AddTT("raw1", cam1, det, 3e6)
	b.AddTT("raw2", cam2, det, 3e6)
	b.AddTT("objects", det, cls, 2e5)
	b.AddTT("classes", cls, sink, 1e4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildExample(t *testing.T) {
	g := buildExample(t)
	if g.NumCTs() != 5 || g.NumTTs() != 4 {
		t.Fatalf("sizes: %d CTs, %d TTs", g.NumCTs(), g.NumTTs())
	}
	srcs := g.Sources()
	if len(srcs) != 2 || srcs[0] != 0 || srcs[1] != 1 {
		t.Fatalf("sources = %v", srcs)
	}
	snks := g.Sinks()
	if len(snks) != 1 || snks[0] != 4 {
		t.Fatalf("sinks = %v", snks)
	}
	if got := g.CT(2).Name; got != "detect" {
		t.Fatalf("CT(2).Name = %q", got)
	}
	if got := g.TT(2).Bits; got != 2e5 {
		t.Fatalf("TT(2).Bits = %v", got)
	}
	if !strings.Contains(g.String(), "fig1") {
		t.Fatalf("String() = %q", g.String())
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Fatal("want error for empty graph")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder("c")
		a := b.AddCT("a", nil)
		c := b.AddCT("b", nil)
		b.AddTT("t1", a, c, 1)
		b.AddTT("t2", c, a, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for cyclic graph")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder("s")
		a := b.AddCT("a", nil)
		b.AddTT("t", a, a, 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for self loop")
		}
	})
	t.Run("bad endpoint", func(t *testing.T) {
		b := NewBuilder("b")
		a := b.AddCT("a", nil)
		b.AddTT("t", a, CTID(9), 1)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for undefined CT")
		}
	})
	t.Run("negative bits", func(t *testing.T) {
		b := NewBuilder("n")
		a := b.AddCT("a", nil)
		c := b.AddCT("b", nil)
		b.AddTT("t", a, c, -1)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for negative bits")
		}
	})
	t.Run("negative requirement", func(t *testing.T) {
		b := NewBuilder("r")
		b.AddCT("a", resource.Vector{resource.CPU: -5})
		if _, err := b.Build(); err == nil {
			t.Fatal("want error for negative requirement")
		}
	})
}

func TestAdjacency(t *testing.T) {
	g := buildExample(t)
	if got := g.OutTTs(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("OutTTs(cam1) = %v", got)
	}
	if got := g.InTTs(2); len(got) != 2 {
		t.Fatalf("InTTs(detect) = %v", got)
	}
	adj := g.AdjacentTTs(2)
	if len(adj) != 3 {
		t.Fatalf("AdjacentTTs(detect) = %v", adj)
	}
}

func TestReachable(t *testing.T) {
	g := buildExample(t)
	for _, tc := range []struct {
		i, j CTID
		want bool
	}{
		{0, 2, true},  // camera1 -> detect
		{2, 0, true},  // reachability is undirected for ranking
		{0, 1, false}, // two cameras are not related
		{0, 4, true},  // source to sink
		{3, 3, false}, // self
	} {
		if got := g.Reachable(tc.i, tc.j); got != tc.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestMinBitsTTBetween(t *testing.T) {
	g := buildExample(t)
	// Adjacent pair: exactly the connecting TT.
	tt, ok := g.MinBitsTTBetween(2, 3)
	if !ok || g.TT(tt).Name != "objects" {
		t.Fatalf("MinBitsTTBetween(detect,classify) = %v ok=%v", tt, ok)
	}
	// Order must not matter.
	tt2, ok2 := g.MinBitsTTBetween(3, 2)
	if !ok2 || tt2 != tt {
		t.Fatalf("reverse lookup differs: %v vs %v", tt2, tt)
	}
	// Distant pair camera1..consumer: lightest TT on the path is "classes".
	tt3, ok3 := g.MinBitsTTBetween(0, 4)
	if !ok3 || g.TT(tt3).Name != "classes" {
		t.Fatalf("MinBitsTTBetween(cam1,consumer) = %q", g.TT(tt3).Name)
	}
	// Unrelated CTs: no TT between the two cameras.
	if _, ok := g.MinBitsTTBetween(0, 1); ok {
		t.Fatal("cameras must have no TT between them")
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildExample(t)
	pos := make(map[CTID]int)
	for i, ct := range g.TopoOrder() {
		pos[ct] = i
	}
	for tt := 0; tt < g.NumTTs(); tt++ {
		e := g.TT(TTID(tt))
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates TT %d", tt)
		}
	}
}

func TestTotals(t *testing.T) {
	g := buildExample(t)
	if got := g.TotalReq()[resource.CPU]; got != 150 {
		t.Fatalf("TotalReq cpu = %v", got)
	}
	if got := g.TotalBits(); got != 3e6+3e6+2e5+1e4 {
		t.Fatalf("TotalBits = %v", got)
	}
}

func TestLinear(t *testing.T) {
	reqs := []resource.Vector{{resource.CPU: 1}, {resource.CPU: 2}, {resource.CPU: 3}}
	bits := []float64{10, 20, 30, 40}
	g, err := Linear("lin", reqs, bits)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCTs() != 5 || g.NumTTs() != 4 {
		t.Fatalf("sizes: %d CTs %d TTs", g.NumCTs(), g.NumTTs())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("linear graph must have one source and one sink")
	}
	if _, err := Linear("bad", reqs, bits[:2]); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestDiamond(t *testing.T) {
	width := 4
	reqs := make([]resource.Vector, 2*width+1)
	for i := range reqs {
		reqs[i] = resource.Vector{resource.CPU: float64(i + 1)}
	}
	bits := make([]float64, 3*width+1)
	for i := range bits {
		bits[i] = float64(10 * (i + 1))
	}
	g, err := Diamond("dia", width, reqs, bits)
	if err != nil {
		t.Fatal(err)
	}
	// source + 2*width stages + join + consumer
	if g.NumCTs() != 2*width+3 || g.NumTTs() != 3*width+1 {
		t.Fatalf("sizes: %d CTs %d TTs", g.NumCTs(), g.NumTTs())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("diamond graph must have one source and one sink")
	}
	// Parallel branch CTs must not be reachable from each other.
	s1a, s1b := CTID(1), CTID(2)
	if g.Reachable(s1a, s1b) {
		t.Fatal("parallel branches must be unrelated")
	}
	if _, err := Diamond("bad", width, reqs[:3], bits); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Diamond("bad", width, reqs, bits[:3]); err == nil {
		t.Fatal("want length mismatch error")
	}
}

// TestQuickRandomDAGs builds random DAGs and checks structural invariants:
// sources/sinks partition correctly, Reachable is symmetric, and
// MinBitsTTBetween returns a TT on a path between the pair.
func TestQuickRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		b := NewBuilder("rand")
		ids := make([]CTID, n)
		for i := range ids {
			ids[i] = b.AddCT("ct", resource.Vector{resource.CPU: 1 + r.Float64()})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					b.AddTT("tt", ids[i], ids[j], 1+r.Float64()*100)
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for i := CTID(0); int(i) < n; i++ {
			for j := CTID(0); int(j) < n; j++ {
				if g.Reachable(i, j) != g.Reachable(j, i) {
					return false
				}
				tt, ok := g.MinBitsTTBetween(i, j)
				if ok != g.Reachable(i, j) && i != j {
					// Reachable pairs must have a TT between them.
					return false
				}
				if ok {
					e := g.TT(tt)
					// The TT endpoints must both lie "between" i and j.
					lo, hi := i, j
					if g.Reachable(j, i) && int(j) < int(i) {
						lo, hi = j, i
					}
					if int(e.From) < int(lo) || int(e.To) > int(hi) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := buildExample(t)
	dot := g.DOT()
	for _, want := range []string{
		"digraph taskgraph",
		`"fig1"`,
		`"camera1"`,
		"ct0 -> ct2",
		"raw1 (3e+06)",
		"cpu: 100",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	if g.DOT() != dot {
		t.Fatal("DOT not deterministic")
	}
}
