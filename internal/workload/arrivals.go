package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file generates arrival processes and size distributions for
// open-loop load experiments: Poisson arrivals (optionally modulated by a
// diurnal rate profile) and bounded-Pareto heavy-tailed application
// sizes. Open-loop means the generator never waits for the system — the
// next arrival is scheduled from the process alone, so an overloaded
// admission path accumulates queueing delay instead of silently
// throttling the offered load (the coordinated-omission trap of
// closed-loop harnesses).

// Poisson is a homogeneous Poisson arrival process of the given rate
// (arrivals per second). All randomness flows through the explicit rng,
// matching the package convention.
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process; rate must be positive and finite.
func NewPoisson(rate float64, rng *rand.Rand) (*Poisson, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return nil, fmt.Errorf("workload: invalid Poisson rate %v", rate)
	}
	return &Poisson{rate: rate, rng: rng}, nil
}

// Next draws the inter-arrival gap to the next event: Exp(rate).
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// Diurnal is a non-homogeneous Poisson process whose instantaneous rate
// follows a sinusoidal day profile around a base rate:
//
//	rate(t) = base * (1 + amplitude*sin(2*pi*t/period))
//
// implemented by thinning: candidate events are drawn at the peak rate
// and accepted with probability rate(t)/peak, which is exact for any
// bounded rate function. Amplitude must lie in [0, 1) so the rate stays
// positive.
type Diurnal struct {
	base, amplitude float64
	period          float64 // seconds
	elapsed         float64 // seconds since process start
	rng             *rand.Rand
}

// NewDiurnal returns a diurnal-modulated Poisson process.
func NewDiurnal(base, amplitude float64, period time.Duration, rng *rand.Rand) (*Diurnal, error) {
	if base <= 0 || math.IsInf(base, 0) || math.IsNaN(base) {
		return nil, fmt.Errorf("workload: invalid base rate %v", base)
	}
	if amplitude < 0 || amplitude >= 1 || math.IsNaN(amplitude) {
		return nil, fmt.Errorf("workload: diurnal amplitude %v outside [0, 1)", amplitude)
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: diurnal period %v must be positive", period)
	}
	return &Diurnal{base: base, amplitude: amplitude, period: period.Seconds(), rng: rng}, nil
}

// Next draws the gap to the next accepted arrival by thinning at the
// peak rate base*(1+amplitude).
func (d *Diurnal) Next() time.Duration {
	peak := d.base * (1 + d.amplitude)
	for {
		d.elapsed += d.rng.ExpFloat64() / peak
		rate := d.base * (1 + d.amplitude*math.Sin(2*math.Pi*d.elapsed/d.period))
		if d.rng.Float64()*peak <= rate {
			return time.Duration(d.elapsed * float64(time.Second))
		}
	}
}

// Elapsed returns the process time of the last accepted arrival,
// measured from the start of the process. Next returns absolute offsets
// for Diurnal (unlike Poisson's gaps) because the thinning clock is
// inherently absolute; callers sleep until the offset.
func (d *Diurnal) Elapsed() time.Duration {
	return time.Duration(d.elapsed * float64(time.Second))
}

// BoundedPareto draws from the bounded Pareto distribution on [lo, hi]
// with tail index alpha — the canonical heavy-tailed size distribution of
// workload studies (most draws near lo, rare draws up to hi). Smaller
// alpha means a heavier tail; alpha around 1.1-1.5 reproduces the
// "elephants and mice" mix. Inverse-CDF sampling:
//
//	x = (-(U*hi^a - U*lo^a - hi^a) / (hi^a * lo^a))^(-1/a)
func BoundedPareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if !(alpha > 0) || !(lo > 0) || !(hi > lo) {
		return lo
	}
	u := rng.Float64()
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	// Guard the float edges: u -> 1 can land a hair outside [lo, hi].
	return math.Min(math.Max(x, lo), hi)
}
