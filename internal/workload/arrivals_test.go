package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestPoissonMean: the empirical mean inter-arrival time of a Poisson
// process must match 1/rate, and the gap distribution must be memoryless
// (CV ~ 1).
func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := NewPoisson(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		gap := p.Next().Seconds()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		sum += gap
		sumSq += gap * gap
	}
	mean := sum / n
	if math.Abs(mean-0.02) > 0.001 {
		t.Errorf("mean gap = %v, want ~0.02", mean)
	}
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Errorf("coefficient of variation = %v, want ~1 (exponential)", cv)
	}
}

func TestPoissonValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewPoisson(rate, rng); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

// TestDiurnalModulation: over whole periods the accepted-event rate must
// average the base rate, and the half-period with the sinusoidal peak
// must hold more events than the trough half.
func TestDiurnalModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	period := 10 * time.Second
	d, err := NewDiurnal(100, 0.8, period, rng)
	if err != nil {
		t.Fatal(err)
	}
	const periods = 50
	horizon := time.Duration(periods) * period
	peakHalf, troughHalf := 0, 0
	n := 0
	for {
		at := d.Next()
		if at > horizon {
			break
		}
		n++
		// sin > 0 on the first half of each period.
		if math.Mod(at.Seconds(), period.Seconds()) < period.Seconds()/2 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	want := 100 * horizon.Seconds()
	if math.Abs(float64(n)-want) > want*0.05 {
		t.Errorf("diurnal events = %d, want ~%v", n, want)
	}
	if float64(peakHalf) < 1.5*float64(troughHalf) {
		t.Errorf("modulation missing: peak half %d vs trough half %d", peakHalf, troughHalf)
	}
	if d.Elapsed() <= 0 {
		t.Error("elapsed not advancing")
	}
}

func TestDiurnalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDiurnal(0, 0.5, time.Second, rng); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := NewDiurnal(1, 1, time.Second, rng); err == nil {
		t.Error("amplitude 1 accepted")
	}
	if _, err := NewDiurnal(1, -0.1, time.Second, rng); err == nil {
		t.Error("negative amplitude accepted")
	}
	if _, err := NewDiurnal(1, 0.5, 0, rng); err == nil {
		t.Error("zero period accepted")
	}
}

// TestBoundedPareto checks support, the heavy tail, and the analytic
// mean for alpha=1.5 on [1, 100]:
//
//	E[X] = lo^a/(1-(lo/hi)^a) * a/(a-1) * (1/lo^(a-1) - 1/hi^(a-1))
func TestBoundedPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const alpha, lo, hi = 1.5, 1.0, 100.0
	const n = 200000
	var sum float64
	big := 0
	for i := 0; i < n; i++ {
		x := BoundedPareto(rng, alpha, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("draw %v outside [%v, %v]", x, lo, hi)
		}
		sum += x
		if x > 10 {
			big++
		}
	}
	la := math.Pow(lo, alpha)
	want := la / (1 - math.Pow(lo/hi, alpha)) * alpha / (alpha - 1) *
		(1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
	mean := sum / n
	if math.Abs(mean-want) > want*0.05 {
		t.Errorf("mean = %v, want ~%v", mean, want)
	}
	// P(X > 10) for bounded Pareto ~ (lo/10)^alpha scaled by the bound
	// normalization ~ 3%; a light-tailed distribution would give ~0.
	frac := float64(big) / n
	if frac < 0.01 || frac > 0.1 {
		t.Errorf("tail fraction P(X>10) = %v, want a few percent", frac)
	}

	// Degenerate parameters collapse to lo without panicking.
	if got := BoundedPareto(rng, 0, 1, 10); got != 1 {
		t.Errorf("alpha=0 -> %v, want lo", got)
	}
	if got := BoundedPareto(rng, 1.5, 2, 1); got != 2 {
		t.Errorf("hi<lo -> %v, want lo", got)
	}
}
