package workload

import (
	"fmt"

	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
)

// Units: CPU capacities are megacycles per second (MHz) and CT
// requirements megacycles per image, so requirement/capacity is seconds
// per image. Link bandwidths are megabits per second and TT sizes
// megabits per image.

// Table II — the face detection application's per-image requirements.
const (
	ResizeMC        = 9880.0
	DenoiseMC       = 12800.0
	EdgeDetectionMC = 4826.0
	FaceDetectionMC = 5658.0

	RawImageMb      = 3.1 * 8   // 3.1 MB
	ResizedImageMb  = 0.182 * 8 // 182 kB
	DenoisedImageMb = 0.145 * 8 // 145 kB
	EdgeMapMb       = 0.188 * 8 // 188 kB
	DetectedFacesMb = 0.011 * 8 // 11 kB
)

// Table I — the testbed capacities.
const (
	FieldCPUMHz = 3000.0
	CloudCPUMHz = 4 * 3800.0
	CloudBWMbps = 100.0
)

// FaceDetectionApp builds the Fig. 5 pipeline: camera -> resize ->
// denoise -> edge detection -> face detection -> consumer, with the Table
// II requirements.
func FaceDetectionApp() (*taskgraph.Graph, error) {
	b := taskgraph.NewBuilder("face-detection")
	camera := b.AddCT("camera", nil)
	resize := b.AddCT("resize", resource.Vector{resource.CPU: ResizeMC})
	denoise := b.AddCT("denoise", resource.Vector{resource.CPU: DenoiseMC})
	edge := b.AddCT("edge-detection", resource.Vector{resource.CPU: EdgeDetectionMC})
	face := b.AddCT("face-detection", resource.Vector{resource.CPU: FaceDetectionMC})
	consumer := b.AddCT("consumer", nil)
	b.AddTT("raw-images", camera, resize, RawImageMb)
	b.AddTT("resized-images", resize, denoise, ResizedImageMb)
	b.AddTT("denoised-images", denoise, edge, DenoisedImageMb)
	b.AddTT("edge-maps", edge, face, EdgeMapMb)
	b.AddTT("detected-faces", face, consumer, DetectedFacesMb)
	return b.Build()
}

// TestbedNetwork builds the Fig. 4 network with the Table I capacities and
// the given field bandwidth in Mbps (the Fig. 6 sweep variable).
func TestbedNetwork(fieldBWMbps float64) (*network.Network, error) {
	return network.CloudField(network.CloudFieldParams{
		FieldCapacity:  resource.Vector{resource.CPU: FieldCPUMHz},
		CloudCapacity:  resource.Vector{resource.CPU: CloudCPUMHz},
		FieldBandwidth: fieldBWMbps,
		CloudBandwidth: CloudBWMbps,
	})
}

// TestbedPins pins the camera and the consumer of the face detection app
// to field NCP 1 (the surveillance deployment of §V.A: images originate
// and results are consumed at the field edge).
func TestbedPins(g *taskgraph.Graph, net *network.Network) (placement.Pins, error) {
	host, ok := net.NCPIDByName(network.CloudFieldNames.Field[0])
	if !ok {
		return nil, fmt.Errorf("workload: network %q has no NCP %q", net.Name(), network.CloudFieldNames.Field[0])
	}
	pins := placement.Pins{}
	for _, src := range g.Sources() {
		pins[src] = host
	}
	for _, snk := range g.Sinks() {
		pins[snk] = host
	}
	return pins, nil
}

// CloudNCP returns the testbed's cloud node id.
func CloudNCP(net *network.Network) (network.NCPID, error) {
	id, ok := net.NCPIDByName(network.CloudFieldNames.Cloud)
	if !ok {
		return -1, fmt.Errorf("workload: network %q has no cloud NCP", net.Name())
	}
	return id, nil
}
