// Package workload generates the scenarios of the SPARCLE evaluation (§V):
// random task graphs and heterogeneous networks calibrated into the
// paper's bottleneck regimes, the face-detection application of Table II,
// and the cloud+field testbed of Table I / Fig. 4.
//
// All randomness flows through explicit *rand.Rand values so every
// experiment is reproducible from its seed.
package workload

import (
	"fmt"
	"math/rand"

	"sparcle/internal/network"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
)

// Regime selects which side of the network binds the processing rate
// (§V.B.1).
type Regime int

// The bottleneck regimes of the evaluation.
const (
	Balanced Regime = iota + 1
	NCPBottleneck
	LinkBottleneck
	// MemoryBottleneck is the multi-resource-type case of Fig. 12: NCPs
	// have ample CPU but scarce memory.
	MemoryBottleneck
)

// String returns the regime name used in experiment tables.
func (r Regime) String() string {
	switch r {
	case Balanced:
		return "balanced"
	case NCPBottleneck:
		return "NCP-bottleneck"
	case LinkBottleneck:
		return "link-bottleneck"
	case MemoryBottleneck:
		return "memory-bottleneck"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Shape selects the task graph family of Fig. 7.
type Shape int

// The task graph shapes.
const (
	ShapeLinear Shape = iota + 1
	ShapeDiamond
	// ShapeRandom draws a random layered DAG (taskgraph.RandomLayered)
	// with NumCTs layers of 1-3 CTs each.
	ShapeRandom
)

// Topology selects the computing network family.
type Topology int

// The network topologies of §V.B.1, plus a binary tree (typical of
// hierarchical IoT deployments: leaves -> aggregation -> gateway).
const (
	TopoStar Topology = iota + 1
	TopoLine
	TopoMesh
	TopoTree
)

// Instance is one generated scenario: an application pinned onto a
// network.
type Instance struct {
	Net   *network.Network
	Graph *taskgraph.Graph
	Pins  placement.Pins
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	Shape    Shape
	Topology Topology
	Regime   Regime
	// NumNCPs is the network size (default 8).
	NumNCPs int
	// NumCTs is the number of processing CTs for linear graphs (default
	// 4) or the branch width for diamond graphs (default 3).
	NumCTs int
	// MultiResource adds memory requirements to every CT (always on for
	// MemoryBottleneck).
	MultiResource bool
	// NCPFailProb / LinkFailProb set element failure probabilities
	// (default 0).
	NCPFailProb, LinkFailProb float64
	// DistinctEndpoints forces sources and sinks onto pairwise distinct
	// hosts (when the network is large enough), preventing degenerate
	// instances where the whole pipeline collapses onto one NCP.
	DistinctEndpoints bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumNCPs == 0 {
		c.NumNCPs = 8
	}
	if c.NumCTs == 0 {
		if c.Shape == ShapeDiamond {
			c.NumCTs = 3
		} else {
			c.NumCTs = 4
		}
	}
	if c.Regime == MemoryBottleneck {
		c.MultiResource = true
	}
	return c
}

// Requirement and capacity scales. Requirements are drawn uniformly from
// [reqLo, reqHi]; element capacities are scale * U(0.5, 1.5), so networks
// are heterogeneous. The regime fixes the two scales: the scarce side gets
// scarceScale and the generous side a 10x larger ratio (§V.B.1).
const (
	reqLo, reqHi  = 5.0, 25.0
	scarceScale   = 30.0
	generousScale = 300.0
)

// Generate builds one random Instance.
func Generate(cfg GenConfig, rng *rand.Rand) (*Instance, error) {
	cfg = cfg.withDefaults()
	g, err := generateGraph(cfg, rng)
	if err != nil {
		return nil, err
	}
	net, err := generateNetwork(cfg, rng)
	if err != nil {
		return nil, err
	}
	var pins placement.Pins
	if cfg.DistinctEndpoints {
		pins = PinDistinctEnds(g, net, rng)
	} else {
		pins = PinRandomEnds(g, net, rng)
	}
	return &Instance{Net: net, Graph: g, Pins: pins}, nil
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func generateGraph(cfg GenConfig, rng *rand.Rand) (*taskgraph.Graph, error) {
	req := func() resource.Vector {
		v := resource.Vector{resource.CPU: uniform(rng, reqLo, reqHi)}
		if cfg.MultiResource {
			v[resource.Memory] = uniform(rng, reqLo, reqHi)
		}
		return v
	}
	bits := func() float64 { return uniform(rng, reqLo, reqHi) }

	switch cfg.Shape {
	case ShapeLinear:
		reqs := make([]resource.Vector, cfg.NumCTs)
		for i := range reqs {
			reqs[i] = req()
		}
		tt := make([]float64, cfg.NumCTs+1)
		for i := range tt {
			tt[i] = bits()
		}
		return taskgraph.Linear("linear", reqs, tt)
	case ShapeDiamond:
		reqs := make([]resource.Vector, 2*cfg.NumCTs+1)
		for i := range reqs {
			reqs[i] = req()
		}
		tt := make([]float64, 3*cfg.NumCTs+1)
		for i := range tt {
			tt[i] = bits()
		}
		return taskgraph.Diamond("diamond", cfg.NumCTs, reqs, tt)
	case ShapeRandom:
		return taskgraph.RandomLayered("random", taskgraph.RandomConfig{
			Layers:   cfg.NumCTs,
			MinWidth: 1,
			MaxWidth: 3,
			EdgeProb: 0.25,
			CTReq:    func(r *rand.Rand) resource.Vector { return req() },
			TTBits:   func(r *rand.Rand) float64 { return bits() },
		}, rng)
	default:
		return nil, fmt.Errorf("workload: unknown shape %d", cfg.Shape)
	}
}

func generateNetwork(cfg GenConfig, rng *rand.Rand) (*network.Network, error) {
	ncpScale, linkScale := scarceScale, scarceScale
	switch cfg.Regime {
	case Balanced:
		// both scarce: either side can bind
	case NCPBottleneck, MemoryBottleneck:
		linkScale = generousScale
	case LinkBottleneck:
		ncpScale = generousScale
	default:
		return nil, fmt.Errorf("workload: unknown regime %d", cfg.Regime)
	}

	capacity := func() resource.Vector {
		v := resource.Vector{resource.CPU: ncpScale * uniform(rng, 0.5, 1.5)}
		if cfg.MultiResource {
			memScale := ncpScale
			if cfg.Regime == MemoryBottleneck {
				// CPU is generous, memory scarce.
				v[resource.CPU] = generousScale * uniform(rng, 0.5, 1.5)
				memScale = scarceScale
			}
			v[resource.Memory] = memScale * uniform(rng, 0.5, 1.5)
		}
		return v
	}
	bandwidth := func() float64 { return linkScale * uniform(rng, 0.5, 1.5) }

	b := network.NewBuilder(fmt.Sprintf("gen-%s", cfg.Regime))
	ids := make([]network.NCPID, cfg.NumNCPs)
	for i := range ids {
		ids[i] = b.AddNCP(fmt.Sprintf("ncp%d", i), capacity(), cfg.NCPFailProb)
	}
	link := func(a, c network.NCPID) {
		b.AddLink(fmt.Sprintf("l%d-%d", a, c), a, c, bandwidth(), cfg.LinkFailProb)
	}
	switch cfg.Topology {
	case TopoStar:
		for i := 1; i < cfg.NumNCPs; i++ {
			link(ids[0], ids[i])
		}
	case TopoLine:
		for i := 1; i < cfg.NumNCPs; i++ {
			link(ids[i-1], ids[i])
		}
	case TopoMesh:
		for i := 0; i < cfg.NumNCPs; i++ {
			for j := i + 1; j < cfg.NumNCPs; j++ {
				link(ids[i], ids[j])
			}
		}
	case TopoTree:
		for i := 1; i < cfg.NumNCPs; i++ {
			link(ids[(i-1)/2], ids[i])
		}
	default:
		return nil, fmt.Errorf("workload: unknown topology %d", cfg.Topology)
	}
	return b.Build()
}

// PinRandomEnds pins every source and sink CT of g to NCPs drawn uniformly
// at random (sources and sinks may share hosts, as cameras and consumers
// can co-reside in deployments).
func PinRandomEnds(g *taskgraph.Graph, net *network.Network, rng *rand.Rand) placement.Pins {
	pins := placement.Pins{}
	for _, src := range g.Sources() {
		pins[src] = network.NCPID(rng.Intn(net.NumNCPs()))
	}
	for _, snk := range g.Sinks() {
		pins[snk] = network.NCPID(rng.Intn(net.NumNCPs()))
	}
	return pins
}

// PinDistinctEnds pins sources and sinks onto pairwise distinct random
// hosts; if there are more endpoints than NCPs, hosts wrap around.
func PinDistinctEnds(g *taskgraph.Graph, net *network.Network, rng *rand.Rand) placement.Pins {
	perm := rng.Perm(net.NumNCPs())
	pins := placement.Pins{}
	i := 0
	for _, src := range g.Sources() {
		pins[src] = network.NCPID(perm[i%len(perm)])
		i++
	}
	for _, snk := range g.Sinks() {
		pins[snk] = network.NCPID(perm[i%len(perm)])
		i++
	}
	return pins
}
