package workload

import (
	"math/rand"
	"testing"

	"sparcle/internal/assign"
	"sparcle/internal/network"
	"sparcle/internal/resource"
	"sparcle/internal/taskgraph"
)

func TestGenerateShapesAndTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []Shape{ShapeLinear, ShapeDiamond} {
		for _, topo := range []Topology{TopoStar, TopoLine, TopoMesh} {
			for _, regime := range []Regime{Balanced, NCPBottleneck, LinkBottleneck, MemoryBottleneck} {
				inst, err := Generate(GenConfig{Shape: shape, Topology: topo, Regime: regime}, rng)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", shape, topo, regime, err)
				}
				if inst.Net.NumNCPs() != 8 {
					t.Fatalf("default NCPs = %d", inst.Net.NumNCPs())
				}
				if !inst.Net.Connected() {
					t.Fatal("generated network must be connected")
				}
				// Every source/sink is pinned.
				for _, src := range inst.Graph.Sources() {
					if _, ok := inst.Pins[src]; !ok {
						t.Fatal("source not pinned")
					}
				}
				for _, snk := range inst.Graph.Sinks() {
					if _, ok := inst.Pins[snk]; !ok {
						t.Fatal("sink not pinned")
					}
				}
				// Instances must be schedulable by SPARCLE.
				caps := inst.Net.BaseCapacities()
				p, err := assign.Sparcle{}.Assign(inst.Graph, inst.Pins, inst.Net, caps)
				if err != nil {
					t.Fatalf("%v/%v/%v: assign: %v", shape, topo, regime, err)
				}
				if rate := p.Rate(caps); rate <= 0 {
					t.Fatalf("%v/%v/%v: zero rate", shape, topo, regime)
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(GenConfig{Shape: 0, Topology: TopoStar, Regime: Balanced}, rng); err == nil {
		t.Fatal("unknown shape must error")
	}
	if _, err := Generate(GenConfig{Shape: ShapeLinear, Topology: 0, Regime: Balanced}, rng); err == nil {
		t.Fatal("unknown topology must error")
	}
	if _, err := Generate(GenConfig{Shape: ShapeLinear, Topology: TopoStar, Regime: 0}, rng); err == nil {
		t.Fatal("unknown regime must error")
	}
}

func TestRegimeCalibration(t *testing.T) {
	// The regimes are defined by capacity-to-requirement ratios (§V.B.1):
	// the generous side must offer roughly a 10x larger ratio than the
	// scarce side. Verify the generator delivers that spread on average.
	rng := rand.New(rand.NewSource(7))
	ratios := func(regime Regime) (ncpRatio, linkRatio float64) {
		const trials = 20
		for i := 0; i < trials; i++ {
			inst, err := Generate(GenConfig{Shape: ShapeLinear, Topology: TopoStar, Regime: regime}, rng)
			if err != nil {
				t.Fatal(err)
			}
			capSum, reqSum, bwSum, bitSum := 0.0, 0.0, 0.0, 0.0
			for v := 0; v < inst.Net.NumNCPs(); v++ {
				capSum += inst.Net.NCP(network.NCPID(v)).Capacity[resource.CPU]
			}
			for c := 0; c < inst.Graph.NumCTs(); c++ {
				reqSum += inst.Graph.CT(taskgraph.CTID(c)).Req[resource.CPU]
			}
			for l := 0; l < inst.Net.NumLinks(); l++ {
				bwSum += inst.Net.Link(network.LinkID(l)).Bandwidth
			}
			bitSum += inst.Graph.TotalBits()
			ncpRatio += capSum / float64(inst.Net.NumNCPs()) / (reqSum / float64(inst.Graph.NumCTs()-2))
			linkRatio += bwSum / float64(inst.Net.NumLinks()) / (bitSum / float64(inst.Graph.NumTTs()))
		}
		return ncpRatio / trials, linkRatio / trials
	}

	ncpR, linkR := ratios(NCPBottleneck)
	if linkR < 5*ncpR {
		t.Fatalf("NCP-bottleneck: link ratio %v not >> NCP ratio %v", linkR, ncpR)
	}
	ncpR, linkR = ratios(LinkBottleneck)
	if ncpR < 5*linkR {
		t.Fatalf("link-bottleneck: NCP ratio %v not >> link ratio %v", ncpR, linkR)
	}
	ncpR, linkR = ratios(Balanced)
	if ncpR > 3*linkR || linkR > 3*ncpR {
		t.Fatalf("balanced: ratios %v vs %v diverge", ncpR, linkR)
	}
}

func TestMemoryBottleneckAddsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := Generate(GenConfig{Shape: ShapeDiamond, Topology: TopoStar, Regime: MemoryBottleneck}, rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < inst.Graph.NumCTs(); i++ {
		if inst.Graph.CT(taskgraph.CTID(i)).Req[resource.Memory] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("memory-bottleneck instances must have memory requirements")
	}
	// NCP memory must be scarcer than CPU.
	cap0 := inst.Net.NCP(0).Capacity
	if cap0[resource.Memory] >= cap0[resource.CPU] {
		t.Fatalf("memory %v not scarcer than cpu %v", cap0[resource.Memory], cap0[resource.CPU])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Shape: ShapeLinear, Topology: TopoLine, Regime: Balanced}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Shape: ShapeLinear, Topology: TopoLine, Regime: Balanced}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Net.NumNCPs(); v++ {
		if !a.Net.NCP(network.NCPID(v)).Capacity.Equal(b.Net.NCP(network.NCPID(v)).Capacity) {
			t.Fatal("same seed must generate identical networks")
		}
	}
}

func TestFaceDetectionApp(t *testing.T) {
	g, err := FaceDetectionApp()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCTs() != 6 || g.NumTTs() != 5 {
		t.Fatalf("sizes: %d CTs, %d TTs", g.NumCTs(), g.NumTTs())
	}
	if got := g.TotalReq()[resource.CPU]; got != ResizeMC+DenoiseMC+EdgeDetectionMC+FaceDetectionMC {
		t.Fatalf("total req = %v", got)
	}
	// Raw image is by far the heaviest transport.
	if RawImageMb < 10*ResizedImageMb {
		t.Fatal("Table II constants corrupted")
	}
}

func TestTestbed(t *testing.T) {
	net, err := TestbedNetwork(10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FaceDetectionApp()
	if err != nil {
		t.Fatal(err)
	}
	pins, err := TestbedPins(g, net)
	if err != nil {
		t.Fatal(err)
	}
	caps := net.BaseCapacities()
	p, err := assign.Sparcle{}.Assign(g, pins, net, caps)
	if err != nil {
		t.Fatal(err)
	}
	if rate := p.Rate(caps); rate <= 0 {
		t.Fatalf("testbed rate = %v", rate)
	}
	cloud, err := CloudNCP(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.NCP(cloud).Capacity[resource.CPU]; got != CloudCPUMHz {
		t.Fatalf("cloud capacity = %v", got)
	}
}

func TestGenerateRandomShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		inst, err := Generate(GenConfig{
			Shape:    ShapeRandom,
			Topology: TopoStar,
			Regime:   Balanced,
			NumCTs:   3,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		caps := inst.Net.BaseCapacities()
		p, err := assign.Sparcle{}.Assign(inst.Graph, inst.Pins, inst.Net, caps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rate := p.Rate(caps); rate <= 0 {
			t.Fatalf("trial %d: zero rate", trial)
		}
	}
}

func TestTreeTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst, err := Generate(GenConfig{
		Shape:    ShapeLinear,
		Topology: TopoTree,
		Regime:   Balanced,
		NumNCPs:  7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Net.NumLinks() != 6 {
		t.Fatalf("tree links = %d, want n-1 = 6", inst.Net.NumLinks())
	}
	if !inst.Net.Connected() {
		t.Fatal("tree must be connected")
	}
	// Root has two children; leaves have one incident link.
	if got := len(inst.Net.Incident(0)); got != 2 {
		t.Fatalf("root degree = %d", got)
	}
	caps := inst.Net.BaseCapacities()
	p, err := assign.Sparcle{}.Assign(inst.Graph, inst.Pins, inst.Net, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate(caps) <= 0 {
		t.Fatal("zero rate on tree")
	}
}
