#!/usr/bin/env bash
# Regenerates BENCH_serve.json: an open-loop serving ladder of four
# labelled sparcle-load runs over two scenarios and two lock regimes.
#
#   1. cloud-field, single lock, rate=100  — the PR 6 baseline config;
#      arrival-bound, so admissions/sec tracks the offered rate.
#   2. mesh16, shards=4, rate=100          — same arrival-bound regime on
#      the denser network; shows the sharded admission-ratio penalty
#      (halves must place inside one region) honestly.
#   3. mesh16, single lock, rate=2000      — past the single lock's
#      saturation point; admissions/sec is now server-bound.
#   4. mesh16, shards=4, rate=2000         — the same overload against
#      four region shards; admissions/sec should clearly beat run 3.
#   5. mesh16, group commit, rate=2000     — the same overload through
#      the group-commit front end on a single lock: concurrent submits
#      coalesce into shared batch solves, so admissions/sec should beat
#      run 3 and the alloc.solve stage count runs below one per
#      admission.
#   6. mesh16, journal + group commit, rate=2000 — run 5 over a
#      fsync-per-commit write-ahead journal; the journal.fsync stage
#      count amortizes below one per admission (one fsync per group).
#   7. mesh16, 3-node replication, rate=2000 — the journaled overload
#      against a replicated cluster: every admission is quorum-acked
#      across three nodes, and the load generator is pointed at node 0
#      regardless of who leads so the 421-redirect/retry path is on the
#      measured path.
#   8. mesh16, 3-node replication + group commit, rate=2000 — run 7 with
#      the group-commit front end: each batch is one replicated record,
#      so the quorum round-trip and both fsyncs amortize across the
#      group and admissions/sec should clearly beat run 7.
#
# A closed-loop contention sweep (sparcle-load -concurrency 1,8,64,256)
# then runs against the grouped server, appending one labelled rung per
# in-flight level.
#
# Usage: scripts/bench_serve.sh [outfile]   (default: BENCH_serve.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_serve.json}
duration=${DURATION:-10s}
seed=${SEED:-42}

work=$(mktemp -d)
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
go build -o "$work/sparcle-load" ./cmd/sparcle-load
"$work/sparcle" -example > "$work/cloud-field.json"
rm -f "$out"

# run <label> <scenario> <rate> <server-flags...>
run() {
    local label=$1 scenario=$2 rate=$3
    shift 3
    "$work/sparcle-server" -f "$scenario" -addr 127.0.0.1:0 -spans "$@" \
        > "$work/server.log" 2>&1 &
    pid=$!
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server.log")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$work/server.log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never became ready:"; cat "$work/server.log"; exit 1; }
    echo "== $label"
    "$work/sparcle-load" -addr "$addr" -rate "$rate" -duration "$duration" \
        -seed "$seed" -keep 16 -out "$out" -append -label "$label" | grep offered
    kill "$pid"
    wait "$pid" 2>/dev/null || true
}

run "cloud-field single rate=100" "$work/cloud-field.json" 100
run "mesh16 shards=4 rate=100"    testdata/mesh16.json     100  -shards 4
run "mesh16 single rate=2000"     testdata/mesh16.json     2000
run "mesh16 shards=4 rate=2000"   testdata/mesh16.json     2000 -shards 4
run "mesh16 group rate=2000"      testdata/mesh16.json     2000 -group-commit
run "mesh16 journal+group rate=2000" testdata/mesh16.json  2000 -journal "$work/journal" -group-commit

# 3-node replicated cluster: one journaled server per node, admissions
# acked by quorum. Ports must be known before any node starts (the
# -peers map is fixed), so probe for free ones instead of binding :0.
find_port() {
    local p
    while :; do
        p=$((10000 + RANDOM % 50000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- || true
    done
}
run_cluster() { # args: label [extra server flags...]
    local label=$1
    shift
    rm -rf "$work"/repl-j*
    local rports=("$(find_port)" "$(find_port)" "$(find_port)")
    local rpeers="n0=http://127.0.0.1:${rports[0]},n1=http://127.0.0.1:${rports[1]},n2=http://127.0.0.1:${rports[2]}"
    local rpids=()
    local i p ready
    for i in 0 1 2; do
        "$work/sparcle-server" -f testdata/mesh16.json -addr "127.0.0.1:${rports[$i]}" -spans \
            -journal "$work/repl-j$i" -replicate "n$i" -peers "$rpeers" "$@" \
            > "$work/repl-n$i.log" 2>&1 &
        rpids+=($!)
        disown $!
    done
    ready=""
    for _ in $(seq 1 100); do
        for p in "${rports[@]}"; do
            if curl -fsS --max-time 2 "http://127.0.0.1:$p/healthz" 2>/dev/null \
                | grep -q '"role":"leader","term":[0-9]*,.*"ready":true'; then
                ready=1
                break 2
            fi
        done
        sleep 0.1
    done
    [ -n "$ready" ] || { echo "replicated cluster never elected a leader"; cat "$work"/repl-n*.log; exit 1; }
    echo "== $label"
    # Aim the generator at node 0 regardless of who leads: the follower
    # redirect (421) and election retries are part of what is measured.
    "$work/sparcle-load" -addr "127.0.0.1:${rports[0]}" -rate 2000 -duration "$duration" \
        -seed "$seed" -keep 16 -out "$out" -append -label "$label" | grep offered
    kill "${rpids[@]}" 2>/dev/null || true
}
run_cluster "mesh16 repl3 rate=2000"
run_cluster "mesh16 repl3+group rate=2000" -group-commit

# Closed-loop contention sweep against a grouped server: the in-flight
# count is the controlled variable, one rung per level.
"$work/sparcle-server" -f testdata/mesh16.json -addr 127.0.0.1:0 -spans -group-commit \
    > "$work/server.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$work/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never became ready:"; cat "$work/server.log"; exit 1; }
echo "== mesh16 group contention sweep"
"$work/sparcle-load" -addr "$addr" -concurrency "${SWEEP:-1,8,64,256}" \
    -duration "${SWEEP_DURATION:-5s}" -seed "$seed" -keep 16 \
    -out "$out" -label "mesh16 group"
kill "$pid"
wait "$pid" 2>/dev/null || true

python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for e in doc["ladder"]:
    c, cl = e["config"], e["client"]
    st = e["server"].get("stages") or {}
    extra = ""
    if cl["admitted"] and "alloc.solve" in st:
        extra = f' solves/adm={st["alloc.solve"]["count"]/cl["admitted"]:.2f}'
        if "journal.fsync" in st:
            extra += f' fsyncs/adm={st["journal.fsync"]["count"]/cl["admitted"]:.2f}'
    print(f'{c.get("label", "?"):34s} shards={c.get("shards", 1)} '
          f'admitted={cl["admitted"]:5d} ({cl["admissionsPerSec"]:7.2f}/s) '
          f'rejected={cl["rejected"]} dropped={cl["dropped"]}'
          f' p99={cl["latencySeconds"]["p99"]:.4f}s{extra}')
EOF
