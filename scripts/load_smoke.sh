#!/usr/bin/env bash
# Black-box load smoke test: boot a span-instrumented sparcle-server on
# the example scenario, fire a short open-loop Poisson run at it with
# sparcle-load, and require (a) a nonzero number of admissions, (b) a
# parseable non-empty Chrome trace from GET /debug/flight, and (c) a
# BENCH_serve.json report carrying per-stage latency quantiles. A second
# pass reboots the server region-sharded (-shards 4) and appends a
# labelled ladder entry to the same report, so the sharded admission
# path gets the same black-box treatment as the single-lock one. A third
# pass reboots with -group-commit over a write-ahead journal and drives
# the closed-loop -concurrency sweep, asserting /healthz reports real
# group-commit activity.
set -euo pipefail

rate=${RATE:-100}
duration=${DURATION:-3s}
min_admitted=${MIN_ADMITTED:-10}

work=$(mktemp -d)
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
go build -o "$work/sparcle-load" ./cmd/sparcle-load
"$work/sparcle" -example > "$work/scenario.json"

echo "== boot with span tracing armed"
"$work/sparcle-server" -f "$work/scenario.json" -addr 127.0.0.1:0 \
    -spans -spans-chrome "$work/trace.json" -flight 256 \
    > "$work/server.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$work/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never became ready:"; cat "$work/server.log"; exit 1; }

echo "== open-loop run: rate=$rate for $duration (floor: $min_admitted admissions)"
"$work/sparcle-load" -addr "$addr" -rate "$rate" -duration "$duration" \
    -keep 16 -out "$work/BENCH_serve.json" \
    -min-admitted "$min_admitted" -check-flight

echo "== report sanity"
grep -q '"admissionsPerSec"' "$work/BENCH_serve.json"
grep -q '"core.submit"' "$work/BENCH_serve.json"

echo "== server-side Chrome trace parses after shutdown"
kill "$pid"
wait "$pid" 2>/dev/null || true
python3 - "$work/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace empty"
assert all(e.get("ph") == "X" for e in events), "unexpected event phase"
names = {e["name"] for e in events}
for stage in ("http.submit", "core.submit", "assign.rank"):
    assert stage in names, f"stage {stage} missing from trace: {sorted(names)}"
print(f"trace ok: {len(events)} events, {len(names)} distinct stages")
EOF

echo "== sharded pass: boot with -shards 4"
"$work/sparcle-server" -f "$work/scenario.json" -addr 127.0.0.1:0 -shards 4 \
    -spans -spans-chrome "$work/trace-shards.json" -flight 256 \
    > "$work/server-shards.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server-shards.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "sharded server died:"; cat "$work/server-shards.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "sharded server never became ready:"; cat "$work/server-shards.log"; exit 1; }
grep -q 'sparcle-server sharded: 4 regions' "$work/server-shards.log"

echo "== sharded open-loop run: rate=$rate for $duration (appended to the ladder)"
"$work/sparcle-load" -addr "$addr" -rate "$rate" -duration "$duration" \
    -keep 16 -out "$work/BENCH_serve.json" -append -label "shards=4" \
    -min-admitted "$min_admitted" -check-flight

echo "== ladder sanity"
python3 - "$work/BENCH_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
ladder = doc["ladder"]
assert len(ladder) == 2, f"want 2 ladder entries, got {len(ladder)}"
assert ladder[1]["config"].get("shards") == 4, ladder[1]["config"]
assert "core.submit" in ladder[1]["server"]["stages"], "sharded run lost stage spans"
print("ladder ok:", [f'{e["config"].get("label") or "single"}: '
                     f'{e["client"]["admitted"]} admitted' for e in ladder])
EOF

echo "== sharded trace parses after shutdown"
kill "$pid"
wait "$pid" 2>/dev/null || true
python3 - "$work/trace-shards.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "sharded trace empty"
names = {e["name"] for e in events}
for stage in ("http.submit", "core.submit", "lock.wait"):
    assert stage in names, f"stage {stage} missing from sharded trace: {sorted(names)}"
print(f"sharded trace ok: {len(events)} events, {len(names)} distinct stages")
EOF

echo "== grouped pass: boot with -group-commit over a journal"
"$work/sparcle-server" -f "$work/scenario.json" -addr 127.0.0.1:0 \
    -spans -journal "$work/journal" -group-commit \
    > "$work/server-group.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server-group.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "grouped server died:"; cat "$work/server-group.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "grouped server never became ready:"; cat "$work/server-group.log"; exit 1; }
grep -q 'group commit armed' "$work/server-group.log"

echo "== closed-loop contention sweep against the grouped server"
"$work/sparcle-load" -addr "$addr" -concurrency 1,8 -duration "$duration" \
    -keep 16 -out "$work/BENCH_serve.json" -label "group-commit" \
    -min-admitted "$min_admitted"

echo "== group-commit activity visible on /healthz"
python3 - "$addr" "$work/BENCH_serve.json" <<'EOF'
import json, sys, urllib.request
hz = json.load(urllib.request.urlopen(f"http://{sys.argv[1]}/healthz"))
gc = hz.get("groupCommit")
# Removes/repairs ride the queue as single-op groups, so groups can
# legitimately exceed apps under keep-eviction churn.
assert gc and gc["groups"] > 0 and gc["apps"] > 0, f"no group activity: {gc}"
doc = json.load(open(sys.argv[2]))
ladder = doc["ladder"]
assert len(ladder) == 4, f"want 4 ladder entries (2 open-loop + 2 sweep), got {len(ladder)}"
sweep = [e for e in ladder if e["config"].get("concurrency")]
assert [e["config"]["concurrency"] for e in sweep] == [1, 8], sweep
assert all(e["client"]["admitted"] > 0 for e in sweep), "sweep admitted nothing"
print(f"group commit ok: {gc['groups']} groups, {gc['apps']} apps, {gc['follows']} follows")
EOF
kill "$pid"
wait "$pid" 2>/dev/null || true

echo "PASS: load smoke complete"
