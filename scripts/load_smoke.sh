#!/usr/bin/env bash
# Black-box load smoke test: boot a span-instrumented sparcle-server on
# the example scenario, fire a short open-loop Poisson run at it with
# sparcle-load, and require (a) a nonzero number of admissions, (b) a
# parseable non-empty Chrome trace from GET /debug/flight, and (c) a
# BENCH_serve.json report carrying per-stage latency quantiles.
set -euo pipefail

rate=${RATE:-100}
duration=${DURATION:-3s}
min_admitted=${MIN_ADMITTED:-10}

work=$(mktemp -d)
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
go build -o "$work/sparcle-load" ./cmd/sparcle-load
"$work/sparcle" -example > "$work/scenario.json"

echo "== boot with span tracing armed"
"$work/sparcle-server" -f "$work/scenario.json" -addr 127.0.0.1:0 \
    -spans -spans-chrome "$work/trace.json" -flight 256 \
    > "$work/server.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$work/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never became ready:"; cat "$work/server.log"; exit 1; }

echo "== open-loop run: rate=$rate for $duration (floor: $min_admitted admissions)"
"$work/sparcle-load" -addr "$addr" -rate "$rate" -duration "$duration" \
    -keep 16 -out "$work/BENCH_serve.json" \
    -min-admitted "$min_admitted" -check-flight

echo "== report sanity"
grep -q '"admissionsPerSec"' "$work/BENCH_serve.json"
grep -q '"core.submit"' "$work/BENCH_serve.json"

echo "== server-side Chrome trace parses after shutdown"
kill "$pid"
wait "$pid" 2>/dev/null || true
python3 - "$work/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace empty"
assert all(e.get("ph") == "X" for e in events), "unexpected event phase"
names = {e["name"] for e in events}
for stage in ("http.submit", "core.submit", "assign.rank"):
    assert stage in names, f"stage {stage} missing from trace: {sorted(names)}"
print(f"trace ok: {len(events)} events, {len(names)} distinct stages")
EOF

echo "PASS: load smoke complete"
