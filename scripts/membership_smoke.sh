#!/usr/bin/env bash
# Black-box membership-churn smoke test: boot a 3-node replicated
# cluster, write through the leader, SIGKILL a follower, live-join a
# replacement node under a FRESH ID (-join: it self-registers, catches
# up as a learner, and is promoted to voter), remove the dead member via
# POST /repl/members, and require quorum-acked writes to succeed at
# every step and the final membership/app state to converge.
set -euo pipefail

work=$(mktemp -d)
pids=()
trap 'kill -9 "${pids[@]}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
"$work/sparcle" -example > "$work/scenario.json"

# Ports must be known before any node starts (the -peers map is fixed),
# so probe for free ones instead of binding :0.
find_port() {
    local p
    while :; do
        p=$((10000 + RANDOM % 50000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- || true
    done
}
p0=$(find_port); p1=$(find_port); p2=$(find_port); p3=$(find_port)
peers="n0=http://127.0.0.1:$p0,n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2"
ports=("$p0" "$p1" "$p2")

start_node() { # args: index; appends to $pids
    local i=$1
    "$work/sparcle-server" -f "$work/scenario.json" -addr "127.0.0.1:${ports[$i]}" \
        -journal "$work/journal-n$i" -replicate "n$i" -peers "$peers" \
        -repl-heartbeat 25ms -seed 7 >> "$work/n$i.log" 2>&1 &
    pids+=($!)
    disown $!
}

healthz() { curl -fsS --max-time 2 "http://127.0.0.1:$1/healthz" 2>/dev/null || true; }

# wait_leader [excluded-port] -> sets $leader_port; scans $ports plus $p3
wait_leader() {
    local skip="${1:-}"
    leader_port=""
    for _ in $(seq 1 200); do
        for p in "${ports[@]}" "$p3"; do
            [ "$p" = "$skip" ] && continue
            if healthz "$p" | grep -q '"role":"leader","term":[0-9]*,.*"ready":true'; then
                leader_port=$p
                return
            fi
        done
        sleep 0.1
    done
    echo "FAIL: no ready leader elected"
    for p in "${ports[@]}" "$p3"; do healthz "$p"; echo; done
    exit 1
}

submit() { # args: port name; retries 503s while membership churns
    local p=$1 name=$2 code
    for _ in $(seq 1 50); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$p/apps" -d '{
            "name": "'"$name"'",
            "cts": [{"name": "s", "host": "ncp1"}, {"name": "t", "host": "cloud"}],
            "tts": [{"from": "s", "to": "t", "bits": 8}],
            "qos": {"class": "best-effort", "priority": 1, "maxPaths": 2}
        }')
        [ "$code" = "201" ] && return
        sleep 0.1
    done
    echo "FAIL: submit $name to :$p never got 201 (last: $code)"
    exit 1
}

members() { curl -fsS --max-time 2 "http://127.0.0.1:$1/repl/members" 2>/dev/null || true; }

# change_members port json: POST a membership change, retrying 409/503
# (one change at a time; elections) and re-pointing at the leader on 421.
change_members() {
    local p=$1 body=$2 code
    for _ in $(seq 1 100); do
        code=$(curl -s -o "$work/members-resp.json" -w '%{http_code}' \
            -X POST "http://127.0.0.1:$p/repl/members" -d "$body")
        case "$code" in
        200) return ;;
        421)
            local url
            url=$(grep -o '"leaderUrl":"[^"]*"' "$work/members-resp.json" | cut -d'"' -f4)
            [ -n "$url" ] && p="${url##*:}" && p="${p%/}"
            ;;
        esac
        sleep 0.1
    done
    echo "FAIL: membership change $body never got 200 (last: $code)"
    cat "$work/members-resp.json"
    exit 1
}

echo "== boot the 3-node cluster"
start_node 0; start_node 1; start_node 2
wait_leader
echo "   leader on :$leader_port"

echo "== write through the leader"
for i in $(seq 0 3); do submit "$leader_port" "pre-$i"; done

echo "== SIGKILL a follower"
killed_id=""; killed_port=""
for j in 0 1 2; do
    if [ "${ports[$j]}" != "$leader_port" ]; then
        killed_id="n$j"; killed_port="${ports[$j]}"
        kill -9 "${pids[$j]}"
        break
    fi
done
echo "   killed $killed_id on :$killed_port"

echo "== writes must still reach quorum with one member down"
for i in $(seq 0 1); do submit "$leader_port" "down-$i"; done

echo "== live-join a replacement under a fresh ID (n3)"
"$work/sparcle-server" -f "$work/scenario.json" -addr "127.0.0.1:$p3" \
    -journal "$work/journal-n3" -replicate "n3" -peers "n3=http://127.0.0.1:$p3" \
    -join "http://127.0.0.1:$leader_port" \
    -repl-heartbeat 25ms -seed 7 >> "$work/n3.log" 2>&1 &
pids+=($!)
disown $!

echo "== wait for n3 to catch up and be promoted to voter"
ok=""
for _ in $(seq 1 300); do
    if members "$leader_port" | grep -q '"id":"n3","addr":[^,]*,"voter":true'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: n3 never became a voter"; members "$leader_port"; echo; cat "$work/n3.log"; exit 1; }

echo "== remove the dead member"
change_members "$leader_port" '{"action":"remove","id":"'"$killed_id"'"}'
ok=""
for _ in $(seq 1 100); do
    if ! members "$leader_port" | grep -q '"id":"'"$killed_id"'"'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: $killed_id still in membership"; members "$leader_port"; exit 1; }

echo "== writes must succeed on the reshaped cluster"
wait_leader "$killed_port"
for i in $(seq 0 2); do submit "$leader_port" "post-$i"; done

echo "== the joined node converges byte-identical with every acked admission"
ok=""
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$leader_port/apps" > "$work/leader.json"
    curl -fsS "http://127.0.0.1:$p3/apps" > "$work/joiner.json" 2>/dev/null || { sleep 0.1; continue; }
    if cmp -s "$work/leader.json" "$work/joiner.json"; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: joiner never converged"; diff -u "$work/leader.json" "$work/joiner.json" || true; exit 1; }
for i in $(seq 0 3); do grep -q "pre-$i" "$work/leader.json" || { echo "FAIL: acked app pre-$i lost"; exit 1; }; done
for i in $(seq 0 1); do grep -q "down-$i" "$work/leader.json" || { echo "FAIL: acked app down-$i lost"; exit 1; }; done
for i in $(seq 0 2); do grep -q "post-$i" "$work/leader.json" || { echo "FAIL: post-churn app post-$i lost"; exit 1; }; done
echo "PASS: member replaced live; all acked admissions kept; joiner byte-identical ($(wc -c < "$work/leader.json") bytes)"
