#!/usr/bin/env bash
# Black-box durability smoke test: boot a journaled sparcle-server,
# submit the example scenario's apps plus one over HTTP, SIGKILL the
# process, restart over the same journal directory, and require GET /apps
# to be byte-identical to the pre-crash state.
set -euo pipefail

work=$(mktemp -d)
trap 'kill -9 "${pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
"$work/sparcle" -example > "$work/scenario.json"

start_server() { # args: extra flags...; sets $pid and $addr
    : > "$work/server.log"
    "$work/sparcle-server" -f "$work/scenario.json" -addr 127.0.0.1:0 \
        -journal "$work/journal" "$@" > "$work/server.log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^sparcle-server listening on \([^ ]*\).*/\1/p' "$work/server.log")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "server died:"; cat "$work/server.log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never became ready:"; cat "$work/server.log"; exit 1; }
}

echo "== boot with -submit and a journal"
start_server -submit
curl -fsS -X POST "http://$addr/apps" -d '{
    "name": "smoke-extra",
    "cts": [{"name": "s", "host": "ncp1"}, {"name": "t", "host": "cloud"}],
    "tts": [{"from": "s", "to": "t", "bits": 8}],
    "qos": {"class": "best-effort", "priority": 1, "maxPaths": 2}
}' > /dev/null
curl -fsS "http://$addr/apps" > "$work/before.json"
grep -q . "$work/before.json"

echo "== SIGKILL (no graceful shutdown, journal left open)"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

echo "== restart over the same journal, without -submit"
start_server
grep -q 'recovered to seq' "$work/server.log"
curl -fsS "http://$addr/apps" > "$work/after.json"

if ! diff -u "$work/before.json" "$work/after.json"; then
    echo "FAIL: recovered /apps differs from pre-crash state"
    exit 1
fi
echo "PASS: recovered state is byte-identical ($(wc -c < "$work/before.json") bytes)"
