#!/usr/bin/env bash
# Black-box replication smoke test: boot a 3-node replicated cluster,
# write through the leader, SIGKILL it, require a survivor to take over
# and serve every acked admission, then require the surviving nodes'
# GET /apps to converge byte-identical.
set -euo pipefail

work=$(mktemp -d)
pids=()
trap 'kill -9 "${pids[@]}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/sparcle" ./cmd/sparcle
go build -o "$work/sparcle-server" ./cmd/sparcle-server
"$work/sparcle" -example > "$work/scenario.json"

# Ports must be known before any node starts (the -peers map is fixed),
# so probe for free ones instead of binding :0.
find_port() {
    local p
    while :; do
        p=$((10000 + RANDOM % 50000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- || true
    done
}
p0=$(find_port); p1=$(find_port); p2=$(find_port)
peers="n0=http://127.0.0.1:$p0,n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2"
ports=("$p0" "$p1" "$p2")

start_node() { # args: index; appends to $pids
    local i=$1
    "$work/sparcle-server" -f "$work/scenario.json" -addr "127.0.0.1:${ports[$i]}" \
        -journal "$work/journal-n$i" -replicate "n$i" -peers "$peers" \
        -repl-heartbeat 25ms -seed 7 >> "$work/n$i.log" 2>&1 &
    pids+=($!)
    disown $!
}

healthz() { curl -fsS --max-time 2 "http://127.0.0.1:$1/healthz" 2>/dev/null || true; }

# wait_leader [excluded-port] -> sets $leader_port
wait_leader() {
    local skip="${1:-}"
    leader_port=""
    for _ in $(seq 1 200); do
        for p in "${ports[@]}"; do
            [ "$p" = "$skip" ] && continue
            if healthz "$p" | grep -q '"role":"leader","term":[0-9]*,.*"ready":true'; then
                leader_port=$p
                return
            fi
        done
        sleep 0.1
    done
    echo "FAIL: no ready leader elected"
    for p in "${ports[@]}"; do healthz "$p"; echo; done
    exit 1
}

submit() { # args: port name; retries 503s while a new leader settles
    local p=$1 name=$2 code
    for _ in $(seq 1 50); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://127.0.0.1:$p/apps" -d '{
            "name": "'"$name"'",
            "cts": [{"name": "s", "host": "ncp1"}, {"name": "t", "host": "cloud"}],
            "tts": [{"from": "s", "to": "t", "bits": 8}],
            "qos": {"class": "best-effort", "priority": 1, "maxPaths": 2}
        }')
        [ "$code" = "201" ] && return
        sleep 0.1
    done
    echo "FAIL: submit $name to :$p never got 201 (last: $code)"
    exit 1
}

echo "== boot the 3-node cluster"
start_node 0; start_node 1; start_node 2
wait_leader
echo "   leader on :$leader_port"

echo "== write through the leader"
for i in $(seq 0 4); do submit "$leader_port" "pre-$i"; done

echo "== SIGKILL the leader"
killed_port=$leader_port
for j in 0 1 2; do
    if [ "${ports[$j]}" = "$killed_port" ]; then kill -9 "${pids[$j]}"; fi
done

echo "== a survivor must take over"
wait_leader "$killed_port"
echo "   new leader on :$leader_port"
for i in $(seq 0 2); do submit "$leader_port" "post-$i"; done

echo "== survivors converge byte-identical with every acked admission"
survivor=""
for p in "${ports[@]}"; do
    [ "$p" = "$killed_port" ] || [ "$p" = "$leader_port" ] || survivor=$p
done
ok=""
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$leader_port/apps" > "$work/leader.json"
    curl -fsS "http://127.0.0.1:$survivor/apps" > "$work/survivor.json"
    if cmp -s "$work/leader.json" "$work/survivor.json"; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: survivors never converged"; diff -u "$work/leader.json" "$work/survivor.json" || true; exit 1; }
for i in $(seq 0 4); do grep -q "pre-$i" "$work/leader.json" || { echo "FAIL: acked app pre-$i lost"; exit 1; }; done
for i in $(seq 0 2); do grep -q "post-$i" "$work/leader.json" || { echo "FAIL: post-failover app post-$i lost"; exit 1; }; done
echo "PASS: failover kept all acked admissions; survivors byte-identical ($(wc -c < "$work/leader.json") bytes)"
