// Package sparcle is the public API of the SPARCLE scheduling system for
// stream processing applications over dispersed computing networks
// (Rahimzadeh et al., IEEE ICDCS 2020).
//
// The package re-exports the stable surface of the internal
// implementation: build a Network of computing nodes and links, describe
// applications as TaskGraphs of computation and transport tasks, and
// Submit them to a Scheduler, which places every task (Algorithm 2 over
// Algorithm 1), provisions redundant task-assignment paths until the
// requested availability holds, reserves capacity for guaranteed-rate
// applications, and shares the rest among best-effort applications with
// weighted proportional fairness.
//
//	net, _ := sparcle.NewNetworkBuilder("edge").  ... .Build()
//	app, _ := sparcle.NewTaskGraphBuilder("pipeline"). ... .Build()
//	sched := sparcle.NewScheduler(net)
//	placed, err := sched.Submit(sparcle.App{ ... })
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture.
package sparcle

import (
	"io"
	"log/slog"
	"math/rand"

	"sparcle/internal/assign"
	"sparcle/internal/chaos"
	"sparcle/internal/core"
	"sparcle/internal/network"
	"sparcle/internal/obs"
	"sparcle/internal/placement"
	"sparcle/internal/resource"
	"sparcle/internal/simnet"
	"sparcle/internal/taskgraph"
)

// Resource kinds and vectors.
type (
	// ResourceKind names one resource type ("cpu", "memory", ...).
	ResourceKind = resource.Kind
	// Resources maps resource kinds to amounts: requirements per data
	// unit on tasks, capacities per second on NCPs.
	Resources = resource.Vector
)

// Standard resource kinds.
const (
	CPU    = resource.CPU
	Memory = resource.Memory
)

// Network model.
type (
	// Network is an immutable dispersed computing network.
	Network = network.Network
	// NetworkBuilder incrementally constructs a Network.
	NetworkBuilder = network.Builder
	// NCPID identifies a computing node.
	NCPID = network.NCPID
	// LinkID identifies a link.
	LinkID = network.LinkID
	// Capacities holds residual element capacities.
	Capacities = network.Capacities
)

// NewNetworkBuilder returns a builder for a dispersed computing network.
func NewNetworkBuilder(name string) *NetworkBuilder { return network.NewBuilder(name) }

// Application model.
type (
	// TaskGraph is an immutable application DAG of computation tasks
	// (vertices) and transport tasks (edges).
	TaskGraph = taskgraph.Graph
	// TaskGraphBuilder incrementally constructs a TaskGraph.
	TaskGraphBuilder = taskgraph.Builder
	// CTID identifies a computation task.
	CTID = taskgraph.CTID
	// TTID identifies a transport task.
	TTID = taskgraph.TTID
)

// NewTaskGraphBuilder returns a builder for an application task graph.
func NewTaskGraphBuilder(name string) *TaskGraphBuilder { return taskgraph.NewBuilder(name) }

// Placement and scheduling.
type (
	// Pins maps CTs (data sources, result consumers, or any task the
	// operator wants fixed) to their hosts.
	Pins = placement.Pins
	// Placement is one task assignment path: CTs on NCPs, TTs on link
	// routes.
	Placement = placement.Placement
	// Path couples a placement with its allocated rate.
	Path = placement.Path
	// Algorithm is a pluggable task-assignment algorithm.
	Algorithm = placement.Algorithm

	// App is a stream processing application plus its QoE request.
	App = core.App
	// QoS is the requested quality of experience.
	QoS = core.QoS
	// Class distinguishes best-effort from guaranteed-rate applications.
	Class = core.Class
	// PlacedApp is an admitted application with its paths and rates.
	PlacedApp = core.PlacedApp
	// Scheduler is the SPARCLE system.
	Scheduler = core.Scheduler
	// SchedulerOption configures a Scheduler.
	SchedulerOption = core.Option
)

// Application classes.
const (
	BestEffort     = core.BestEffort
	GuaranteedRate = core.GuaranteedRate
)

// ErrRejected is wrapped by Scheduler.Submit when an application's QoE
// cannot be met.
var ErrRejected = core.ErrRejected

// NewScheduler returns a SPARCLE scheduler over net.
func NewScheduler(net *Network, opts ...SchedulerOption) *Scheduler {
	return core.New(net, opts...)
}

// WithAlgorithm swaps the task assignment algorithm (defaults to SPARCLE's
// dynamic ranking); used to run baselines through the same pipeline.
func WithAlgorithm(alg Algorithm) SchedulerOption { return core.WithAlgorithm(alg) }

// WithDefaultMaxPaths bounds the task-assignment paths per application
// when QoS.MaxPaths is zero.
func WithDefaultMaxPaths(n int) SchedulerOption { return core.WithDefaultMaxPaths(n) }

// WithRandSeed seeds the scheduler's internal randomness.
func WithRandSeed(seed int64) SchedulerOption { return core.WithRandSeed(seed) }

// WithMaxMinFairness switches Best-Effort allocation to weighted max-min
// fairness instead of the paper's proportional fairness.
func WithMaxMinFairness() SchedulerOption { return core.WithMaxMinFairness() }

// WithDiverseMultiPath biases later task assignment paths away from
// elements earlier paths use (bias in (0,1)), raising availability per
// path at some rate cost.
func WithDiverseMultiPath(bias float64) SchedulerOption { return core.WithDiverseMultiPath(bias) }

// WithColdAllocation disables the incremental Best-Effort solver: every
// re-allocation solves problem (4) from scratch instead of warm-starting
// from the previous solve's constraint rows and dual prices. An ablation
// switch; results are identical either way.
func WithColdAllocation() SchedulerOption { return core.WithColdAllocation() }

// WithoutDeltaCapacities disables delta maintenance of the Best-Effort
// capacity pool: every Guaranteed-Rate admission or release rebuilds the
// pool from base capacities instead of applying the reservation's sparse
// delta. An ablation switch; results are identical either way.
func WithoutDeltaCapacities() SchedulerOption { return core.WithoutDeltaCapacities() }

// Observability (see internal/obs): a dependency-free metrics registry,
// a JSONL decision tracer and structured logging, all optional and free
// when unset.
type (
	// MetricsRegistry holds counters, gauges and histograms and exposes
	// them as Prometheus text or a JSON snapshot.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name/value label on a metric series.
	MetricLabel = obs.Label
	// DecisionTracer streams scheduler decision events as JSON Lines.
	DecisionTracer = obs.Tracer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewDecisionTracer returns a tracer writing JSON Lines to w; Close it to
// flush.
func NewDecisionTracer(w io.Writer) *DecisionTracer { return obs.NewTracer(w) }

// ReadTraceEvents decodes a JSONL decision trace into generic maps.
func ReadTraceEvents(r io.Reader) ([]map[string]any, error) { return obs.ReadEvents(r) }

// WithMetrics publishes scheduler metrics (admissions, placement latency,
// repairs, per-app rates, allocation solves) into reg.
func WithMetrics(reg *MetricsRegistry) SchedulerOption { return core.WithMetrics(reg) }

// WithTracer streams scheduler decisions (ranking iterations, routing,
// admissions, repairs, allocation solves) to tr.
func WithTracer(tr *DecisionTracer) SchedulerOption { return core.WithTracer(tr) }

// WithLogger attaches a structured logger to the scheduler; see
// NewObsLogger for a ready-made stderr logger.
func WithLogger(l *slog.Logger) SchedulerOption { return core.WithLogger(l) }

// NewObsLogger returns a text slog.Logger writing to w at the given level.
func NewObsLogger(w io.Writer, level slog.Level) *slog.Logger { return obs.NewLogger(w, level) }

// DynamicRanking returns SPARCLE's task assignment algorithm (Algorithm 2)
// for direct use outside a Scheduler.
func DynamicRanking() Algorithm { return assign.Sparcle{} }

// Decision is one step of the dynamic-ranking placement, delivered to the
// observer of DynamicRankingObserved.
type Decision = assign.Decision

// DynamicRankingObserved returns Algorithm 2 with an observer that
// receives every placement decision — useful for explaining placements.
func DynamicRankingObserved(observer func(Decision)) Algorithm {
	return assign.Sparcle{Observer: observer}
}

// DynamicRankingParallel returns Algorithm 2 scoring candidates on up to n
// goroutines per ranking iteration (0 uses GOMAXPROCS, 1 is serial).
// Output is identical at every setting; only wall-clock changes.
func DynamicRankingParallel(n int) Algorithm {
	return assign.Sparcle{Parallel: n}
}

// WithParallelism bounds the candidate-scoring workers of the scheduler's
// dynamic-ranking placement (0 = GOMAXPROCS, 1 = serial). Placements and
// traces are identical at every setting.
func WithParallelism(n int) SchedulerOption { return core.WithParallelism(n) }

// Capacity fluctuation (resource dynamics beyond the paper; see
// Scheduler.ApplyFluctuation and Scheduler.Repair).
type (
	// ElementScale maps network elements to capacity scale factors.
	ElementScale = core.ElementScale
	// FluctuationReport describes the effect of a capacity fluctuation.
	FluctuationReport = core.FluctuationReport
)

// NCPElementOf returns the fluctuation/availability element id of an NCP.
func NCPElementOf(v NCPID) placement.Element { return placement.NCPElement(v) }

// LinkElementOf returns the element id of a link in net.
func LinkElementOf(net *Network, l LinkID) placement.Element {
	return placement.LinkElement(net, l)
}

// AssignOnce runs one task assignment of graph onto net at full element
// capacities and returns the placement and its maximum stable processing
// rate.
func AssignOnce(graph *TaskGraph, pins Pins, net *Network) (*Placement, float64, error) {
	caps := net.BaseCapacities()
	p, err := assign.Sparcle{}.Assign(graph, pins, net, caps)
	if err != nil {
		return nil, 0, err
	}
	return p, p.Rate(caps), nil
}

// MultiPathAssign finds up to maxPaths task assignment paths, each at the
// bottleneck rate the residual network supports (§IV.D).
func MultiPathAssign(graph *TaskGraph, pins Pins, net *Network, maxPaths int) ([]Path, error) {
	paths, _, err := assign.MultiPath(assign.Sparcle{}, graph, pins, net, net.BaseCapacities(), maxPaths)
	return paths, err
}

// Simulation.
type (
	// Simulator executes placed applications as a discrete-event
	// queueing network.
	Simulator = simnet.Sim
	// SimConfig controls one simulation run.
	SimConfig = simnet.Config
	// SimReport is the outcome of a simulation run.
	SimReport = simnet.Report
)

// NewSimulator returns a discrete-event simulator over net.
func NewSimulator(net *Network) *Simulator { return simnet.New(net) }

// NewRand returns a deterministic random source for the helpers that take
// one; the library never uses global randomness.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Chaos engineering (see internal/chaos): calibrated failure-trace
// generation, injection with a self-healing repair loop, and
// measured-vs-analytical availability.
type (
	// FailureTrace is a replayable per-element outage schedule.
	FailureTrace = chaos.Trace
	// FailureTraceConfig parameterizes GenerateFailureTrace.
	FailureTraceConfig = chaos.TraceConfig
	// Outage is one element down interval of a FailureTrace.
	Outage = chaos.Outage
	// ChaosPolicy bounds the self-healing loop: repair attempts per
	// episode, exponential backoff with jitter, and the repair-storm
	// budget.
	ChaosPolicy = chaos.Policy
	// ChaosDriver replays a FailureTrace against a Scheduler and heals
	// violated guarantees.
	ChaosDriver = chaos.Driver
	// ChaosResult is the measured outcome of a chaos run.
	ChaosResult = chaos.Result
	// ChaosOption configures a ChaosDriver.
	ChaosOption = chaos.Option
)

// GenerateFailureTrace draws a failure trace for every fallible element of
// net from the alternating renewal process calibrated so each element's
// time-average unavailability equals its FailProb.
func GenerateFailureTrace(net *Network, cfg FailureTraceConfig) (*FailureTrace, error) {
	return chaos.Generate(net, cfg)
}

// FailureTraceFromOutages builds a fixed-scenario trace from an explicit
// outage list.
func FailureTraceFromOutages(horizon float64, outages []Outage) (*FailureTrace, error) {
	return chaos.FromOutages(horizon, outages)
}

// NewChaosDriver returns a driver replaying failure traces against sched
// under policy.
func NewChaosDriver(sched *Scheduler, policy ChaosPolicy, opts ...ChaosOption) *ChaosDriver {
	return chaos.NewDriver(sched, policy, opts...)
}

// WithChaosMetrics publishes the driver's failure/repair/availability
// metrics into reg.
func WithChaosMetrics(reg *MetricsRegistry) ChaosOption { return chaos.WithMetrics(reg) }

// WithChaosTracer streams every injection, recovery and repair attempt to
// tr as chaos decision events.
func WithChaosTracer(tr *DecisionTracer) ChaosOption { return chaos.WithTracer(tr) }

// WithChaosLogger attaches a structured logger to the chaos driver.
func WithChaosLogger(l *slog.Logger) ChaosOption { return chaos.WithLogger(l) }
