package sparcle_test

import (
	"errors"
	"testing"

	"sparcle"
)

// TestPublicAPIEndToEnd exercises the exported facade exactly as an
// external user would: build, schedule, simulate.
func TestPublicAPIEndToEnd(t *testing.T) {
	nb := sparcle.NewNetworkBuilder("edge")
	sensor := nb.AddNCP("sensor", nil, 0)
	worker := nb.AddNCP("worker", sparcle.Resources{sparcle.CPU: 1000}, 0)
	gateway := nb.AddNCP("gateway", nil, 0)
	nb.AddLink("s-w", sensor, worker, 100, 0)
	nb.AddLink("w-g", worker, gateway, 100, 0)
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}

	tb := sparcle.NewTaskGraphBuilder("pipeline")
	src := tb.AddCT("src", nil)
	work := tb.AddCT("work", sparcle.Resources{sparcle.CPU: 100})
	snk := tb.AddCT("snk", nil)
	tb.AddTT("in", src, work, 10)
	tb.AddTT("out", work, snk, 1)
	graph, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	pins := sparcle.Pins{src: sensor, snk: gateway}

	// Direct assignment.
	p, rate, err := sparcle.AssignOnce(graph, pins, net)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || p.Host(work) != worker {
		t.Fatalf("rate=%v host=%v", rate, p.Host(work))
	}

	// Multi-path.
	paths, err := sparcle.MultiPathAssign(graph, pins, net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || paths[0].Rate != rate {
		t.Fatalf("paths = %+v", paths)
	}

	// Full scheduler.
	sched := sparcle.NewScheduler(net, sparcle.WithRandSeed(2), sparcle.WithDefaultMaxPaths(2))
	placed, err := sched.Submit(sparcle.App{
		Name:  "pipeline",
		Graph: graph,
		Pins:  pins,
		QoS:   sparcle.QoS{Class: sparcle.BestEffort, Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if placed.TotalRate() <= 0 {
		t.Fatal("zero allocated rate")
	}

	// Rejection surfaces through the exported sentinel.
	_, err = sched.Submit(sparcle.App{
		Name:  "impossible",
		Graph: graph,
		Pins:  pins,
		QoS:   sparcle.QoS{Class: sparcle.GuaranteedRate, MinRate: 1e12, MinRateAvailability: 0.9},
	})
	if !errors.Is(err, sparcle.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}

	// Simulation through the facade.
	sim := sparcle.NewSimulator(net)
	if err := sim.AddApp(placed.Paths[0].P, placed.Paths[0].Rate*0.5); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(sparcle.SimConfig{Duration: 200, Warmup: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Apps[0].Throughput <= 0 {
		t.Fatal("no simulated throughput")
	}

	// DynamicRanking is usable as a swappable Algorithm.
	var alg sparcle.Algorithm = sparcle.DynamicRanking()
	if alg.Name() != "SPARCLE" {
		t.Fatalf("algorithm name = %q", alg.Name())
	}
	if r := sparcle.NewRand(1); r == nil {
		t.Fatal("NewRand returned nil")
	}
}

// TestPublicAPIFluctuationAndRepair exercises the dynamics extensions
// through the facade.
func TestPublicAPIFluctuationAndRepair(t *testing.T) {
	nb := sparcle.NewNetworkBuilder("edge")
	src := nb.AddNCP("src", nil, 0)
	w1 := nb.AddNCP("w1", sparcle.Resources{sparcle.CPU: 100}, 0)
	w2 := nb.AddNCP("w2", sparcle.Resources{sparcle.CPU: 80}, 0)
	snk := nb.AddNCP("snk", nil, 0)
	nb.AddLink("a", src, w1, 1e6, 0)
	nb.AddLink("b", src, w2, 1e6, 0)
	nb.AddLink("c", w1, snk, 1e6, 0)
	nb.AddLink("d", w2, snk, 1e6, 0)
	net, err := nb.Build()
	if err != nil {
		t.Fatal(err)
	}
	tb := sparcle.NewTaskGraphBuilder("app")
	s := tb.AddCT("s", nil)
	work := tb.AddCT("w", sparcle.Resources{sparcle.CPU: 10})
	k := tb.AddCT("k", nil)
	tb.AddTT("in", s, work, 1)
	tb.AddTT("out", work, k, 1)
	g, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	alg := sparcle.DynamicRankingObserved(func(sparcle.Decision) { steps++ })
	sched := sparcle.NewScheduler(net, sparcle.WithAlgorithm(alg))
	if _, err := sched.Submit(sparcle.App{
		Name: "g", Graph: g, Pins: sparcle.Pins{s: src, k: snk},
		QoS: sparcle.QoS{Class: sparcle.GuaranteedRate, MinRate: 5, MinRateAvailability: 0.9, MaxPaths: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("observer saw no decisions")
	}
	rep, err := sched.ApplyFluctuation(sparcle.ElementScale{sparcle.NCPElementOf(w1): 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ViolatedGR) != 1 {
		t.Fatalf("violations = %v", rep.ViolatedGR)
	}
	if _, err := sched.Repair("g"); err != nil {
		t.Fatal(err)
	}
	_ = sparcle.LinkElementOf(net, 0)
}
